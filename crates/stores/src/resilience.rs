//! Deterministic client-side resilience policies.
//!
//! The closed-loop driver in [`crate::runner`] can wrap every logical
//! operation in the standard robustness kit of a serving stack, all of it
//! virtual-time-deterministic (no wall clock, no ambient RNG):
//!
//! * **Retries** ([`RetryPolicy`]) — failed attempts are re-issued with
//!   exponential backoff and seeded jitter, the backoff delay scheduled
//!   as a kernel event. One jitter factor is drawn per logical op, so the
//!   schedule is monotone non-decreasing and capped by construction.
//! * **Hedged reads** ([`HedgePolicy`]) — after a delay tracking the
//!   observed read-latency quantile ([`HedgeTracker`]), a speculative
//!   duplicate read is issued to a different replica; the first
//!   completion wins and the loser is cancelled
//!   ([`apm_sim::Engine::cancel`]).
//! * **Circuit breakers** ([`BreakerPolicy`], [`Breaker`]) — one
//!   Closed→Open→HalfOpen state machine per target node, driven by a
//!   windowed error count; while open, ops to that target fast-fail on
//!   the client (shed), and half-open probes test recovery.
//! * **Admission control** ([`AdmissionPolicy`], [`AdmissionBudget`]) — a
//!   token bucket bounding *extra* attempts (retries + hedges) to a
//!   ratio of primary attempts, so a retry storm cannot melt the
//!   simulated cluster.
//!
//! All knobs live in [`ResiliencePolicy`] on
//! [`crate::runner::RunConfig`]; `None` (the default) leaves the driver's
//! legacy path untouched and byte-identical.

use apm_core::ops::OpKind;
use apm_core::snap::{Snap, SnapError, SnapReader, SnapWriter};
use apm_core::stats::Histogram;
use apm_sim::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Per-op-kind retry budgets with capped exponential backoff.
#[derive(Clone, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Maximum retries (beyond the primary attempt) for reads and scans.
    pub max_retries_read: u32,
    /// Maximum retries for writes (insert/update).
    pub max_retries_write: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: SimDuration,
    /// Upper bound on any single backoff delay.
    pub backoff_cap: SimDuration,
    /// Maximum fractional jitter added to each delay (0.0 = none,
    /// 0.5 = up to +50 %). The factor is drawn once per logical op from
    /// the seeded stream, keeping the schedule monotone.
    pub jitter: f64,
}

impl RetryPolicy {
    /// A schedule that can wait out multi-second outages: up to 6
    /// retries, 50 ms base, 2 s cap, 25 % jitter.
    pub fn standard() -> RetryPolicy {
        RetryPolicy {
            max_retries_read: 6,
            max_retries_write: 6,
            base_backoff: SimDuration::from_millis(50),
            backoff_cap: SimDuration::from_secs_f64(2.0),
            jitter: 0.25,
        }
    }

    /// Retry budget for `kind`.
    pub fn budget(&self, kind: OpKind) -> u32 {
        if kind.is_write() {
            self.max_retries_write
        } else {
            self.max_retries_read
        }
    }
}

/// Backoff delay before retry `retry_index` (0-based), jittered by
/// `jitter_frac` in `[0, 1)` scaled by the policy's `jitter` knob.
///
/// For a fixed `jitter_frac` the schedule is monotone non-decreasing in
/// `retry_index` and bounded by `backoff_cap`: the exponential term
/// saturates rather than wraps, the jitter multiplier is constant, and
/// the cap is applied last.
pub fn backoff_delay(policy: &RetryPolicy, retry_index: u32, jitter_frac: f64) -> SimDuration {
    let exp = policy
        .base_backoff
        .as_nanos()
        .saturating_mul(1u64 << retry_index.min(32));
    let jitter_ns = (exp as f64 * (policy.jitter * jitter_frac.clamp(0.0, 1.0))) as u64;
    let jittered = exp.saturating_add(jitter_ns);
    SimDuration::from_nanos(jittered.min(policy.backoff_cap.as_nanos()))
}

/// Speculative duplicate reads after a latency-quantile delay.
#[derive(Clone, Debug, PartialEq)]
pub struct HedgePolicy {
    /// Read-latency quantile the hedge delay tracks (e.g. 0.95).
    pub delay_quantile: f64,
    /// Delay floor, also used until the tracker has warmed up.
    pub min_delay: SimDuration,
    /// Successful reads observed before the quantile is trusted.
    pub warmup_samples: u64,
}

impl HedgePolicy {
    /// p95-tracking hedges with a 1 ms floor after 200 samples.
    pub fn standard() -> HedgePolicy {
        HedgePolicy {
            delay_quantile: 0.95,
            min_delay: SimDuration::from_millis(1),
            warmup_samples: 200,
        }
    }
}

/// Tracks successful read latencies to derive the hedge delay.
#[derive(Clone, Debug, Default)]
pub struct HedgeTracker {
    latencies: Histogram,
}

impl HedgeTracker {
    /// Records one successful read attempt's latency.
    pub fn record(&mut self, latency_ns: u64) {
        self.latencies.record(latency_ns);
    }

    /// Current hedge delay: the tracked quantile once warmed up, floored
    /// at `min_delay`; just the floor before warm-up.
    pub fn delay(&self, policy: &HedgePolicy) -> SimDuration {
        if self.latencies.count() < policy.warmup_samples {
            return policy.min_delay;
        }
        let q = self.latencies.quantile(policy.delay_quantile);
        SimDuration::from_nanos(q.max(policy.min_delay.as_nanos()))
    }

    /// Successful reads observed so far.
    pub fn samples(&self) -> u64 {
        self.latencies.count()
    }
}

/// Windowed-error-rate circuit breaking per target node.
#[derive(Clone, Debug, PartialEq)]
pub struct BreakerPolicy {
    /// Attempt outcomes per target in the sliding window.
    pub window: usize,
    /// Error fraction at which a full window trips the breaker open.
    pub error_threshold: f64,
    /// Time the breaker stays open before admitting a half-open probe.
    pub open_for: SimDuration,
}

impl BreakerPolicy {
    /// Trip at ≥50 % errors over 20 attempts, re-probe after 500 ms.
    pub fn standard() -> BreakerPolicy {
        BreakerPolicy {
            window: 20,
            error_threshold: 0.5,
            open_for: SimDuration::from_millis(500),
        }
    }
}

/// Circuit-breaker state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: all attempts admitted, outcomes windowed.
    Closed,
    /// Tripped: attempts shed until `open_for` elapses.
    Open,
    /// Probing: one attempt admitted to test recovery.
    HalfOpen,
}

/// True when a `from → to` breaker transition is one the state machine
/// can legally make (the invariant [`crate::audit::RetryAuditor`] checks).
pub fn breaker_transition_is_legal(from: BreakerState, to: BreakerState) -> bool {
    matches!(
        (from, to),
        (BreakerState::Closed, BreakerState::Open)
            | (BreakerState::Open, BreakerState::HalfOpen)
            | (BreakerState::HalfOpen, BreakerState::Closed)
            | (BreakerState::HalfOpen, BreakerState::Open)
    )
}

/// What the breaker decided for one attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerDecision {
    /// Attempt proceeds normally.
    Admit,
    /// Attempt proceeds as the half-open probe; report its outcome with
    /// `was_probe = true`.
    Probe,
    /// Attempt is shed: fast-fail on the client without touching the
    /// target.
    Shed,
}

/// One per-target Closed→Open→HalfOpen state machine.
#[derive(Clone, Debug)]
pub struct Breaker {
    state: BreakerState,
    /// Recent attempt outcomes, `true` = error (bounded by the policy
    /// window; a deque keeps eviction order deterministic).
    outcomes: VecDeque<bool>,
    errors_in_window: usize,
    opened_at: SimTime,
    probe_in_flight: bool,
}

impl Default for Breaker {
    fn default() -> Self {
        Breaker {
            state: BreakerState::Closed,
            outcomes: VecDeque::new(),
            errors_in_window: 0,
            opened_at: SimTime::ZERO,
            probe_in_flight: false,
        }
    }
}

impl Breaker {
    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    fn transition(&mut self, to: BreakerState) -> (BreakerState, BreakerState) {
        let from = self.state;
        debug_assert!(breaker_transition_is_legal(from, to));
        self.state = to;
        (from, to)
    }

    /// Decides whether an attempt against this target may proceed at
    /// `now`. Returns the decision plus the state transition it caused,
    /// if any (Open → HalfOpen when the open interval elapsed).
    pub fn admit(
        &mut self,
        now: SimTime,
        policy: &BreakerPolicy,
    ) -> (BreakerDecision, Option<(BreakerState, BreakerState)>) {
        match self.state {
            BreakerState::Closed => (BreakerDecision::Admit, None),
            BreakerState::Open => {
                if now.since(self.opened_at) >= policy.open_for {
                    let t = self.transition(BreakerState::HalfOpen);
                    self.probe_in_flight = true;
                    (BreakerDecision::Probe, Some(t))
                } else {
                    (BreakerDecision::Shed, None)
                }
            }
            BreakerState::HalfOpen => {
                if self.probe_in_flight {
                    (BreakerDecision::Shed, None)
                } else {
                    self.probe_in_flight = true;
                    (BreakerDecision::Probe, None)
                }
            }
        }
    }

    /// Feeds one admitted attempt's outcome back at `now`. Returns the
    /// state transition it caused, if any.
    pub fn on_outcome(
        &mut self,
        now: SimTime,
        ok: bool,
        was_probe: bool,
        policy: &BreakerPolicy,
    ) -> Option<(BreakerState, BreakerState)> {
        if was_probe && self.state == BreakerState::HalfOpen {
            self.probe_in_flight = false;
            return Some(if ok {
                self.outcomes.clear();
                self.errors_in_window = 0;
                self.transition(BreakerState::Closed)
            } else {
                self.opened_at = now;
                self.transition(BreakerState::Open)
            });
        }
        if self.state != BreakerState::Closed {
            // Late completions of attempts admitted before the trip.
            return None;
        }
        self.outcomes.push_back(!ok);
        if !ok {
            self.errors_in_window += 1;
        }
        while self.outcomes.len() > policy.window {
            if self.outcomes.pop_front() == Some(true) {
                self.errors_in_window -= 1;
            }
        }
        let full = self.outcomes.len() >= policy.window;
        let tripped =
            self.errors_in_window as f64 >= policy.error_threshold * self.outcomes.len() as f64;
        if full && tripped {
            self.opened_at = now;
            self.outcomes.clear();
            self.errors_in_window = 0;
            return Some(self.transition(BreakerState::Open));
        }
        None
    }
}

/// Retry-budget admission control (Finagle-style token bucket).
#[derive(Clone, Debug, PartialEq)]
pub struct AdmissionPolicy {
    /// Extra attempts (retries + hedges) earned per primary attempt.
    pub retry_ratio: f64,
    /// Bucket capacity and initial credit, in extra attempts.
    pub burst: u64,
}

impl AdmissionPolicy {
    /// 10 % extra attempts with a burst of 10.
    pub fn standard() -> AdmissionPolicy {
        AdmissionPolicy {
            retry_ratio: 0.1,
            burst: 10,
        }
    }
}

/// Runtime token bucket for [`AdmissionPolicy`]; integer micro-attempt
/// credit keeps it exactly deterministic.
#[derive(Clone, Debug)]
pub struct AdmissionBudget {
    credit_micros: u64,
    cap_micros: u64,
    ratio_micros: u64,
}

const MICROS_PER_ATTEMPT: u64 = 1_000_000;

impl AdmissionBudget {
    /// A bucket filled to `policy.burst`.
    pub fn new(policy: &AdmissionPolicy) -> AdmissionBudget {
        let cap = policy.burst.max(1) * MICROS_PER_ATTEMPT;
        AdmissionBudget {
            credit_micros: cap,
            cap_micros: cap,
            ratio_micros: (policy.retry_ratio.max(0.0) * MICROS_PER_ATTEMPT as f64) as u64,
        }
    }

    /// Credits one primary attempt.
    pub fn on_primary(&mut self) {
        self.credit_micros = (self.credit_micros + self.ratio_micros).min(self.cap_micros);
    }

    /// Tries to spend one extra attempt; `false` means shed it.
    pub fn try_spend(&mut self) -> bool {
        if self.credit_micros >= MICROS_PER_ATTEMPT {
            self.credit_micros -= MICROS_PER_ATTEMPT;
            true
        } else {
            false
        }
    }

    /// Whole extra attempts currently banked.
    pub fn banked(&self) -> u64 {
        self.credit_micros / MICROS_PER_ATTEMPT
    }
}

/// The full client-side policy bundle. Every component is independently
/// optional; the all-`None` default is inert.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ResiliencePolicy {
    /// Retry failed attempts with capped exponential backoff.
    pub retry: Option<RetryPolicy>,
    /// Hedge slow reads to an alternative replica.
    pub hedge: Option<HedgePolicy>,
    /// Per-target circuit breaking.
    pub breaker: Option<BreakerPolicy>,
    /// Bound extra attempts to a fraction of primaries.
    pub admission: Option<AdmissionPolicy>,
}

/// Seeded SplitMix64 stream for the policies' jitter draws (the same
/// generator `apm_sim::fault` uses for random schedules).
pub type JitterRng = apm_core::rng::SplitMix64;

impl Snap for HedgeTracker {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.latencies);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(HedgeTracker {
            latencies: r.get()?,
        })
    }
}

impl Snap for BreakerState {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u8(match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        });
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(BreakerState::Closed),
            1 => Ok(BreakerState::Open),
            2 => Ok(BreakerState::HalfOpen),
            tag => Err(SnapError::BadTag {
                what: "BreakerState",
                tag: u64::from(tag),
            }),
        }
    }
}

impl Snap for Breaker {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.state);
        w.put(&self.outcomes);
        w.put(&(self.errors_in_window as u64));
        w.put(&self.opened_at);
        w.put(&self.probe_in_flight);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(Breaker {
            state: r.get()?,
            outcomes: r.get()?,
            errors_in_window: r.u64()? as usize,
            opened_at: r.get()?,
            probe_in_flight: r.get()?,
        })
    }
}

impl Snap for AdmissionBudget {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.credit_micros);
        w.put_u64(self.cap_micros);
        w.put_u64(self.ratio_micros);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(AdmissionBudget {
            credit_micros: r.u64()?,
            cap_micros: r.u64()?,
            ratio_micros: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    #[test]
    fn backoff_is_monotone_nondecreasing_and_cap_bounded() {
        // Property-style sweep: many jitter factors × long attempt runs.
        let policy = RetryPolicy {
            max_retries_read: 64,
            max_retries_write: 64,
            base_backoff: SimDuration::from_micros(500),
            backoff_cap: ms(1_800),
            jitter: 0.4,
        };
        let mut rng = JitterRng::new(0xA9A1_2012);
        for _ in 0..200 {
            let frac = rng.next_frac();
            let mut prev = SimDuration::ZERO;
            for retry in 0..64 {
                let d = backoff_delay(&policy, retry, frac);
                assert!(
                    d >= prev,
                    "backoff regressed at retry {retry}: {d:?} < {prev:?}"
                );
                assert!(
                    d <= policy.backoff_cap,
                    "backoff exceeded cap at retry {retry}: {d:?}"
                );
                prev = d;
            }
            assert_eq!(prev, policy.backoff_cap, "schedule must reach the cap");
        }
    }

    #[test]
    fn backoff_doubles_before_the_cap() {
        let policy = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::standard()
        };
        assert_eq!(backoff_delay(&policy, 0, 0.9), ms(50));
        assert_eq!(backoff_delay(&policy, 1, 0.9), ms(100));
        assert_eq!(backoff_delay(&policy, 2, 0.9), ms(200));
        assert_eq!(backoff_delay(&policy, 10, 0.9), ms(2_000));
        // Huge retry indices saturate instead of wrapping.
        assert_eq!(backoff_delay(&policy, 63, 0.9), ms(2_000));
    }

    #[test]
    fn retry_budget_is_per_op_kind() {
        let policy = RetryPolicy {
            max_retries_read: 5,
            max_retries_write: 2,
            ..RetryPolicy::standard()
        };
        assert_eq!(policy.budget(OpKind::Read), 5);
        assert_eq!(policy.budget(OpKind::Scan), 5);
        assert_eq!(policy.budget(OpKind::Insert), 2);
        assert_eq!(policy.budget(OpKind::Update), 2);
    }

    #[test]
    fn hedge_tracker_uses_floor_until_warm_then_quantile() {
        let policy = HedgePolicy {
            delay_quantile: 0.95,
            min_delay: ms(2),
            warmup_samples: 10,
        };
        let mut tracker = HedgeTracker::default();
        assert_eq!(tracker.delay(&policy), ms(2), "cold tracker uses floor");
        for _ in 0..100 {
            tracker.record(ms(8).as_nanos());
        }
        let d = tracker.delay(&policy);
        assert!(d >= ms(7) && d <= ms(9), "p95 ≈ 8 ms, got {d:?}");
        // The floor still applies when the quantile collapses.
        let mut fast = HedgeTracker::default();
        for _ in 0..100 {
            fast.record(1_000);
        }
        assert_eq!(fast.delay(&policy), ms(2));
    }

    #[test]
    fn breaker_trips_after_a_full_window_of_errors() {
        let policy = BreakerPolicy {
            window: 4,
            error_threshold: 0.5,
            open_for: ms(100),
        };
        let mut b = Breaker::default();
        let now = SimTime(1_000);
        assert_eq!(b.admit(now, &policy).0, BreakerDecision::Admit);
        // Three errors in a window of four: not full yet, stays closed.
        for _ in 0..3 {
            assert_eq!(b.on_outcome(now, false, false, &policy), None);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        let t = b.on_outcome(now, false, false, &policy);
        assert_eq!(t, Some((BreakerState::Closed, BreakerState::Open)));
        assert_eq!(b.admit(now, &policy).0, BreakerDecision::Shed);
    }

    #[test]
    fn breaker_half_open_probe_closes_on_success_and_reopens_on_failure() {
        let policy = BreakerPolicy {
            window: 2,
            error_threshold: 0.5,
            open_for: ms(100),
        };
        let mut b = Breaker::default();
        b.on_outcome(SimTime(0), false, false, &policy);
        b.on_outcome(SimTime(0), false, false, &policy);
        assert_eq!(b.state(), BreakerState::Open);
        // Before the open interval elapses: shed.
        assert_eq!(b.admit(SimTime(1_000), &policy).0, BreakerDecision::Shed);
        // After: exactly one probe; concurrent attempts shed.
        let at = SimTime(ms(100).as_nanos());
        let (d, t) = b.admit(at, &policy);
        assert_eq!(d, BreakerDecision::Probe);
        assert_eq!(t, Some((BreakerState::Open, BreakerState::HalfOpen)));
        assert_eq!(b.admit(at, &policy).0, BreakerDecision::Shed);
        // Failed probe re-opens and re-arms the timer.
        let t = b.on_outcome(at, false, true, &policy);
        assert_eq!(t, Some((BreakerState::HalfOpen, BreakerState::Open)));
        assert_eq!(b.admit(at, &policy).0, BreakerDecision::Shed);
        // Next probe succeeds: closed, admitting again.
        let at2 = SimTime(at.as_nanos() + ms(100).as_nanos());
        assert_eq!(b.admit(at2, &policy).0, BreakerDecision::Probe);
        let t = b.on_outcome(at2, true, true, &policy);
        assert_eq!(t, Some((BreakerState::HalfOpen, BreakerState::Closed)));
        assert_eq!(b.admit(at2, &policy).0, BreakerDecision::Admit);
    }

    #[test]
    fn breaker_window_slides_and_recovers_with_successes() {
        let policy = BreakerPolicy {
            window: 4,
            error_threshold: 0.75,
            open_for: ms(1),
        };
        let mut b = Breaker::default();
        // Alternating outcomes never reach 75 % of a full window.
        for i in 0..40 {
            assert_eq!(b.on_outcome(SimTime(i), i % 2 == 0, false, &policy), None);
        }
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn breaker_transition_legality_table() {
        use BreakerState::*;
        for (from, to, legal) in [
            (Closed, Open, true),
            (Open, HalfOpen, true),
            (HalfOpen, Closed, true),
            (HalfOpen, Open, true),
            (Closed, HalfOpen, false),
            (Open, Closed, false),
            (Closed, Closed, false),
        ] {
            assert_eq!(
                breaker_transition_is_legal(from, to),
                legal,
                "{from:?}->{to:?}"
            );
        }
    }

    #[test]
    fn admission_budget_banks_and_spends_deterministically() {
        let mut budget = AdmissionBudget::new(&AdmissionPolicy {
            retry_ratio: 0.5,
            burst: 2,
        });
        assert_eq!(budget.banked(), 2);
        assert!(budget.try_spend());
        assert!(budget.try_spend());
        assert!(!budget.try_spend(), "empty bucket sheds");
        budget.on_primary();
        assert!(!budget.try_spend(), "half a credit is not an attempt");
        budget.on_primary();
        assert!(budget.try_spend());
        // Credit never exceeds the burst cap.
        for _ in 0..100 {
            budget.on_primary();
        }
        assert_eq!(budget.banked(), 2);
    }

    #[test]
    fn jitter_stream_is_seed_deterministic_and_in_range() {
        let draw = |seed: u64| -> Vec<f64> {
            let mut rng = JitterRng::new(seed);
            (0..32).map(|_| rng.next_frac()).collect()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
        for f in draw(123) {
            assert!((0.0..1.0).contains(&f));
        }
    }
}
