//! # apm-stores
//!
//! The six store architectures the paper benchmarks, rebuilt over the
//! real engines of `apm-storage` and the cluster simulator of `apm-sim`:
//!
//! | Module | Paper system | Architecture class (Cattell) |
//! |---|---|---|
//! | [`cassandra`] | Apache Cassandra 1.0.0-rc2 | extensible record store |
//! | [`hbase`] | Apache HBase 0.90.4 + HDFS | extensible record store |
//! | [`voldemort`] | Project Voldemort 0.90.1 + BerkeleyDB | key-value store |
//! | [`redis`] | Redis 2.4.2 + Jedis sharding | key-value store |
//! | [`voltdb`] | VoltDB 2.1.3 | scalable relational store |
//! | [`mysql`] | MySQL 5.5.17 InnoDB, client-sharded | scalable relational store |
//!
//! A seventh store, [`mongodb`], implements the document-store class the
//! paper considered and excluded (§4) — used by the `ext-mongodb`
//! experiment to extend the tested architectures per §8's future work.
//!
//! Every store implements [`api::DistributedStore`]: it owns real
//! per-node engines, routes operations through its (faithfully modelled)
//! client-side routing layer, and emits a simulator [`apm_sim::Plan`]
//! describing the operation's physical footprint. The closed-loop
//! benchmark driver lives in [`runner`].

pub mod api;
#[cfg(feature = "audit")]
pub mod audit;
pub mod cache;
pub mod cassandra;
pub mod hashes;
pub mod hbase;
pub mod hdfs;
pub mod mongodb;
pub mod mysql;
pub mod redis;
pub mod resilience;
pub mod routing;
pub mod runner;
pub mod voldemort;
pub mod voltdb;

pub use api::{DistributedStore, StoreCtx};
pub use resilience::ResiliencePolicy;
pub use runner::{run_benchmark, RunConfig, RunResult};

/// The store names in the paper's legend order.
pub const STORE_NAMES: [&str; 6] = [
    "cassandra",
    "hbase",
    "voldemort",
    "voltdb",
    "redis",
    "mysql",
];
