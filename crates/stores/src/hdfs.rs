//! A simplified HDFS model under the HBase store.
//!
//! HBase 0.90 reads and writes *everything* through HDFS DataNodes — there
//! was no short-circuit local read yet, so even a block hosted on the same
//! machine goes through the DataNode's transceiver threads (stream setup,
//! checksum verification, copies). That per-access overhead, multiplied by
//! LSM read amplification, is why HBase's read latency is the highest in
//! the paper while its CPU sits idle (§5.1).
//!
//! Writes use the replication pipeline: the block is streamed to `r`
//! DataNodes in a chain; each link adds a network hop and a sequential
//! disk write.

use crate::api::StoreCtx;
use apm_sim::kernel::ResourceId;
use apm_sim::plan::{Plan, Step};
use apm_sim::{Engine, IoPattern, SimDuration};

/// HDFS configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HdfsConfig {
    /// Block replication factor (default 3; the paper's single-node HBase
    /// setups implicitly degrade to 1).
    pub replication: u32,
    /// Concurrent block streams a DataNode serves (xceiver threads that
    /// matter for small random reads — bounded by disk/stream setup).
    pub xceivers_per_node: u32,
    /// Fixed DataNode overhead per block access: stream setup, checksum,
    /// buffer copies. Calibrated so a single region server sustains
    /// ≈2.5 K reads/s (§5.1, Fig 3).
    pub stream_overhead: SimDuration,
}

impl Default for HdfsConfig {
    fn default() -> Self {
        HdfsConfig {
            replication: 3,
            xceivers_per_node: 4,
            stream_overhead: SimDuration::from_micros(1_500),
        }
    }
}

/// The instantiated HDFS layer: one xceiver pool per DataNode.
#[derive(Clone, Debug)]
pub struct Hdfs {
    config: HdfsConfig,
    xceivers: Vec<ResourceId>,
}

impl Hdfs {
    /// Registers DataNode resources (one pool per server node).
    pub fn new(engine: &mut Engine, ctx: &StoreCtx, config: HdfsConfig) -> Hdfs {
        let xceivers = (0..ctx.servers.len())
            .map(|i| engine.add_resource(format!("datanode{i}.xceiver"), config.xceivers_per_node))
            .collect();
        Hdfs { config, xceivers }
    }

    /// Effective replication given the cluster size.
    pub fn effective_replication(&self, nodes: usize) -> u32 {
        self.config.replication.min(nodes as u32)
    }

    /// Steps for a region server on `node` reading `bytes` from a block
    /// via its local DataNode. `cached` skips the disk access (OS page
    /// cache on the DataNode) but never the stream overhead.
    pub fn read_steps(&self, ctx: &StoreCtx, node: usize, bytes: u64, cached: bool) -> Vec<Step> {
        let mut steps = vec![Step::Acquire {
            resource: self.xceivers[node],
            service: self.config.stream_overhead + ctx.cluster.net.transfer(bytes),
        }];
        if !cached {
            steps.push(Step::Acquire {
                resource: ctx.servers[node].disk,
                service: ctx.cluster.node.disk.service(bytes, IoPattern::Random),
            });
        }
        steps
    }

    /// Plan for pipeline-writing `bytes` starting at `node`: the primary
    /// replica writes locally, then the chain streams to the next
    /// `replication - 1` nodes (NIC hop + sequential write each).
    pub fn write_plan(&self, ctx: &StoreCtx, node: usize, bytes: u64) -> Plan {
        let nodes = ctx.servers.len();
        let reps = self.effective_replication(nodes) as usize;
        let mut steps = Vec::new();
        for i in 0..reps {
            let target = (node + i) % nodes;
            if i > 0 {
                // Pipeline hop: previous node's NIC pushes the block on.
                let prev = (node + i - 1) % nodes;
                steps.push(Step::Acquire {
                    resource: ctx.servers[prev].nic,
                    service: ctx.cluster.net.transfer(bytes),
                });
                steps.push(Step::Delay(ctx.cluster.net.one_way_latency));
            }
            steps.push(Step::Acquire {
                resource: self.xceivers[target],
                service: self.config.stream_overhead,
            });
            steps.push(Step::Acquire {
                resource: ctx.servers[target].disk,
                service: ctx.cluster.node.disk.service(bytes, IoPattern::Sequential),
            });
        }
        Plan(steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apm_sim::kernel::Token;
    use apm_sim::ClusterSpec;

    fn setup(nodes: u32) -> (Engine, StoreCtx, Hdfs) {
        let mut engine = Engine::new();
        let ctx = StoreCtx::new(&mut engine, ClusterSpec::cluster_m(), nodes, 1, 0.1, 7);
        let hdfs = Hdfs::new(&mut engine, &ctx, HdfsConfig::default());
        (engine, ctx, hdfs)
    }

    #[test]
    fn replication_degrades_on_small_clusters() {
        let (_, _, hdfs) = setup(1);
        assert_eq!(hdfs.effective_replication(1), 1);
        assert_eq!(hdfs.effective_replication(2), 2);
        assert_eq!(hdfs.effective_replication(12), 3);
    }

    #[test]
    fn cached_read_skips_disk_but_pays_stream_overhead() {
        let (mut engine, ctx, hdfs) = setup(2);
        let cached = Plan(hdfs.read_steps(&ctx, 0, 65_536, true));
        let uncached = Plan(hdfs.read_steps(&ctx, 0, 65_536, false));
        assert!(cached.min_duration() >= SimDuration::from_micros(1_500));
        assert!(uncached.min_duration().as_nanos() > cached.min_duration().as_nanos() + 7_000_000);
        engine.submit(cached, Token(0));
        assert!(engine.next_completion().is_some());
    }

    #[test]
    fn xceiver_pool_limits_read_concurrency() {
        let (mut engine, ctx, hdfs) = setup(1);
        // 8 concurrent cached reads on a pool of 4 → two waves.
        for i in 0..8 {
            engine.submit(Plan(hdfs.read_steps(&ctx, 0, 1_000, true)), Token(i));
        }
        let completions = engine.run_to_idle();
        assert_eq!(completions.len(), 8);
        let max_latency = completions
            .iter()
            .map(|c| c.latency().as_nanos())
            .max()
            .unwrap();
        let min_latency = completions
            .iter()
            .map(|c| c.latency().as_nanos())
            .min()
            .unwrap();
        assert!(
            max_latency >= 2 * min_latency,
            "queueing must double tail latency"
        );
    }

    #[test]
    fn write_pipeline_touches_all_replicas() {
        let (mut engine, ctx, hdfs) = setup(3);
        engine.submit(hdfs.write_plan(&ctx, 0, 1 << 20), Token(1));
        engine.run_to_idle();
        // Every node's disk saw one sequential write.
        for node in &ctx.servers {
            assert_eq!(engine.served(node.disk), 1, "replica missing a disk write");
        }
    }

    #[test]
    fn single_node_pipeline_writes_once() {
        let (mut engine, ctx, hdfs) = setup(1);
        engine.submit(hdfs.write_plan(&ctx, 0, 1 << 20), Token(1));
        engine.run_to_idle();
        assert_eq!(engine.served(ctx.servers[0].disk), 1);
    }
}
