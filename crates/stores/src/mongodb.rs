//! A MongoDB-(2.0-era)-like document store — the architecture class the
//! paper considered and excluded.
//!
//! §4 (Cattell's taxonomy): *"Cartell also describes a fourth type of
//! store, document stores. However, in our initial research we did not
//! find any document store that seemed to match our requirements and
//! therefore did not include them in the comparison."* §7 cites Jeong's
//! three-way benchmark where *"MongoDB is shown to be less performant"*
//! than Cassandra and HBase. §8 closes with *"we will extend the range of
//! tested architectures"* — this store is that extension, so the
//! `ext-mongodb` experiment can show what the comparison would have
//! looked like.
//!
//! 2012 MongoDB (mmapv1) mechanisms modelled:
//! * documents in memory-mapped files — reads go through the OS page
//!   cache (a buffer pool sized to nearly all of RAM);
//! * the **global write lock**: one writer at a time per `mongod` — the
//!   defining 2012 bottleneck, a capacity-1 resource per node that every
//!   insert/update holds while it runs;
//! * range sharding by `_id` through `mongos` routers: clean chunk
//!   routing for point ops *and* scans (unlike the hash-sharded stores);
//! * BSON bloat: a 75-byte record becomes a ~390-byte document
//!   (field-name strings repeated per document, 16-byte ObjectId-style
//!   padding, power-of-two allocation).

use crate::api::{round_trip_plan, server_steps, CostModel, DistributedStore, StoreCtx};
use crate::routing::RegionMap;
use apm_core::ops::{OpOutcome, Operation};
use apm_core::record::Record;
use apm_core::snap::{SnapError, SnapReader, SnapWriter};
use apm_sim::kernel::ResourceId;
use apm_sim::{Engine, Plan, SimDuration, Step};
use apm_storage::btree::{BTree, BTreeConfig, PageTrace};
use apm_storage::bufferpool::{Access, BufferPool};
use apm_storage::encoding::StorageFormat;
use apm_storage::receipt::{CostReceipt, DiskIo};

/// Read cost: BSON decode + `_id` index walk.
const READ_COST: CostModel = CostModel {
    base_ns: 190_000,
    per_probe_ns: 6_000,
    per_byte_ns: 40,
};
/// Write cost while holding the global write lock: BSON encode, index
/// insert, mmap page dirtying.
const WRITE_LOCK_COST: CostModel = CostModel {
    base_ns: 90_000,
    per_probe_ns: 4_000,
    per_byte_ns: 30,
};
/// Write-path CPU outside the lock (message parse, validation).
const WRITE_CPU: SimDuration = SimDuration::from_micros(120);
/// Range scan fragment (getmore batches over a chunk).
const SCAN_COST: CostModel = CostModel {
    base_ns: 420_000,
    per_probe_ns: 6_000,
    per_byte_ns: 20,
};
/// Client (driver + mongos hop folded in) cost per op.
const CLIENT_CPU: SimDuration = SimDuration::from_micros(25);
/// mmapv1 page cache: essentially all of RAM.
const CACHE_FRACTION: f64 = 0.9;
/// BSON document layout: ~390 B per 75-B record (see module docs).
fn mongo_format() -> StorageFormat {
    StorageFormat {
        name: "mongodb",
        bytes_per_record: 390,
        includes_log: false,
    }
}
/// 16 KB extent pages hold ~40 BSON documents.
const MONGO_PAGE: BTreeConfig = BTreeConfig {
    leaf_capacity: 40,
    internal_capacity: 200,
    page_bytes: 16 << 10,
};
/// Chunks per shard (pre-split, like the HBase region map).
const CHUNKS_PER_SHARD: usize = 8;
/// Wire sizes.
const REQ_BYTES: u64 = 140;
const RESP_READ_BYTES: u64 = 420;
const RESP_WRITE_BYTES: u64 = 60;
const RESP_ROW_BYTES: u64 = 400;

struct Shard {
    tree: BTree,
    pool: BufferPool,
    write_lock: ResourceId,
}

impl Shard {
    fn replay(&mut self, trace: &PageTrace) -> Vec<DiskIo> {
        let mut ios = Vec::new();
        let page_bytes = self.tree.page_bytes();
        for page in trace.read.iter().chain(&trace.written) {
            let access = if trace.written.contains(page) {
                Access::Write
            } else {
                Access::Read
            };
            let r = self.pool.access(*page, access);
            if !r.hit {
                ios.push(DiskIo::random_read(page_bytes));
            }
            if r.writeback.is_some() {
                ios.push(DiskIo::random_write(page_bytes));
            }
        }
        for page in &trace.allocated {
            let r = self.pool.access(*page, Access::Write);
            if r.writeback.is_some() {
                ios.push(DiskIo::random_write(page_bytes));
            }
        }
        ios
    }
}

/// The store.
pub struct MongoStore {
    // Construction-time config/topology; not part of the snapshot stream.
    ctx: StoreCtx,     // audit:allow(snap-drift)
    chunks: RegionMap, // audit:allow(snap-drift)
    shards: Vec<Shard>,
}

impl MongoStore {
    /// Creates the store: one `mongod` per node, range-sharded chunks.
    pub fn new(ctx: StoreCtx, engine: &mut Engine) -> MongoStore {
        let pool_pages = ((ctx.scaled_ram() as f64 * CACHE_FRACTION) as u64 / MONGO_PAGE.page_bytes)
            .max(16) as usize;
        let shards = (0..ctx.node_count())
            .map(|i| Shard {
                tree: BTree::new(MONGO_PAGE),
                pool: BufferPool::new(pool_pages),
                write_lock: engine.add_resource(format!("mongod{i}.writelock"), 1),
            })
            .collect();
        MongoStore {
            chunks: RegionMap::new(ctx.node_count(), CHUNKS_PER_SHARD),
            ctx,
            shards,
        }
    }
}

impl DistributedStore for MongoStore {
    fn name(&self) -> &'static str {
        "mongodb"
    }

    fn ctx(&self) -> &StoreCtx {
        &self.ctx
    }

    fn load(&mut self, record: &Record) {
        let shard = self.chunks.route(&record.key);
        let (_, trace) = self.shards[shard].tree.insert(record.key, record.fields);
        let _ = self.shards[shard].replay(&trace);
    }

    fn plan_op(&mut self, client: u32, op: &Operation, _engine: &mut Engine) -> (OpOutcome, Plan) {
        match op {
            Operation::Read { key } => {
                let shard_idx = self.chunks.route(key);
                let shard = &mut self.shards[shard_idx];
                let (found, trace) = shard.tree.get(key);
                let ios = shard.replay(&trace);
                let mut receipt = CostReceipt::new();
                receipt.probe(trace.read.len() as u64).touch(390);
                let outcome = match found {
                    Some(fields) => OpOutcome::Found(Record { key: *key, fields }),
                    None => OpOutcome::Missing,
                };
                let steps = server_steps(
                    &self.ctx.servers[shard_idx],
                    &self.ctx.cluster,
                    READ_COST.cpu(&receipt),
                    &ios,
                );
                let plan = round_trip_plan(
                    &self.ctx,
                    client,
                    &self.ctx.servers[shard_idx],
                    CLIENT_CPU,
                    REQ_BYTES,
                    RESP_READ_BYTES,
                    steps,
                );
                (outcome, plan)
            }
            Operation::Insert { record } | Operation::Update { record } => {
                let shard_idx = self.chunks.route(&record.key);
                let shard = &mut self.shards[shard_idx];
                let (_, trace) = shard.tree.insert(record.key, record.fields);
                let ios = shard.replay(&trace);
                let mut receipt = CostReceipt::new();
                receipt
                    .probe((trace.read.len() + trace.written.len()) as u64)
                    .touch(390);
                let server = &self.ctx.servers[shard_idx];
                let mut steps = vec![
                    Step::Acquire {
                        resource: server.cpu,
                        service: WRITE_CPU,
                    },
                    // The global write lock: serialises all writers on
                    // this mongod.
                    Step::Acquire {
                        resource: shard.write_lock,
                        service: WRITE_LOCK_COST.cpu(&receipt),
                    },
                ];
                for io in &ios {
                    let pattern = if io.class.is_random() {
                        apm_sim::IoPattern::Random
                    } else {
                        apm_sim::IoPattern::Sequential
                    };
                    steps.push(Step::Acquire {
                        resource: server.disk,
                        service: self.ctx.cluster.node.disk.service(io.bytes, pattern),
                    });
                }
                let plan = round_trip_plan(
                    &self.ctx,
                    client,
                    server,
                    CLIENT_CPU,
                    REQ_BYTES,
                    RESP_WRITE_BYTES,
                    steps,
                );
                (OpOutcome::Done, plan)
            }
            Operation::Scan { start, len } => {
                // Range sharding: the scan starts in one chunk and almost
                // always stays on one shard (like HBase's region scans).
                let shard_idx = *self
                    .chunks
                    .scan_route(start, *len)
                    .first()
                    .expect("scan has a home chunk");
                let shard = &mut self.shards[shard_idx];
                let (rows, trace) = shard.tree.scan(start, *len);
                let ios = shard.replay(&trace);
                let mut receipt = CostReceipt::new();
                receipt
                    .probe(trace.read.len() as u64)
                    .touch(390 * rows.len() as u64);
                let steps = server_steps(
                    &self.ctx.servers[shard_idx],
                    &self.ctx.cluster,
                    SCAN_COST.cpu(&receipt),
                    &ios,
                );
                let resp = RESP_ROW_BYTES * rows.len().max(1) as u64;
                let plan = round_trip_plan(
                    &self.ctx,
                    client,
                    &self.ctx.servers[shard_idx],
                    CLIENT_CPU,
                    REQ_BYTES,
                    resp,
                    steps,
                );
                (OpOutcome::Scanned(rows.len()), plan)
            }
        }
    }

    fn disk_bytes_per_node(&self) -> Option<u64> {
        let records: u64 = self.shards.iter().map(|s| s.tree.len()).sum();
        Some(mongo_format().disk_usage(records) / self.shards.len() as u64)
    }

    fn snap_state(&self, w: &mut SnapWriter) {
        for shard in &self.shards {
            shard.tree.snap_state(w);
            shard.pool.snap_state(w);
        }
    }

    fn restore_state(&mut self, r: &mut SnapReader, _engine: &mut Engine) -> Result<(), SnapError> {
        for shard in &mut self.shards {
            shard.tree.restore_state(r)?;
            shard.pool.restore_state(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_benchmark, RunConfig};
    use apm_core::driver::ClientConfig;
    use apm_core::keyspace::record_for_seq;
    use apm_core::ops::OpKind;
    use apm_core::workload::Workload;
    use apm_sim::{ClusterSpec, FaultSchedule};

    fn make(engine: &mut Engine, nodes: u32) -> MongoStore {
        let ctx = StoreCtx::new(
            engine,
            ClusterSpec::cluster_m(),
            nodes,
            StoreCtx::standard_client_machines(nodes),
            0.01,
            43,
        );
        MongoStore::new(ctx, engine)
    }

    fn quick_run(nodes: u32, workload: Workload) -> crate::runner::RunResult {
        let mut engine = Engine::new();
        let mut s = make(&mut engine, nodes);
        let config = RunConfig {
            workload,
            client: ClientConfig::cluster_m(nodes).with_window(0.5, 3.0),
            records_per_node: 20_000,
            nodes,
            seed: 47,
            event_at_secs: None,
            faults: FaultSchedule::none(),
            op_deadline: None,
            telemetry_window_secs: None,
            resilience: None,
            checkpoints: None,
        };
        run_benchmark(&mut engine, &mut s, &config)
    }

    #[test]
    fn reads_find_loaded_documents() {
        let mut engine = Engine::new();
        let mut s = make(&mut engine, 3);
        for seq in 0..3_000 {
            s.load(&record_for_seq(seq));
        }
        for seq in (0..3_000).step_by(251) {
            let r = record_for_seq(seq);
            let (outcome, _) = s.plan_op(0, &Operation::Read { key: r.key }, &mut engine);
            assert_eq!(outcome, OpOutcome::Found(r), "seq {seq}");
        }
    }

    #[test]
    fn global_write_lock_caps_write_throughput() {
        // With the lock serialising writes, the gap between read-heavy
        // and write-heavy throughput must be large — the Jeong result
        // the paper cites (§7).
        let r = quick_run(1, Workload::r()).throughput();
        let w = quick_run(1, Workload::w()).throughput();
        assert!(w < r * 0.6, "the write lock must cap W: R={r} vs W={w}");
        // Lock-bound ceiling: ~1/(write lock hold time) per node.
        assert!(w < 14_000.0, "W above the single-writer ceiling: {w}");
    }

    #[test]
    fn reads_scale_but_writes_do_not() {
        let w1 = quick_run(1, Workload::w()).throughput();
        let w4 = quick_run(4, Workload::w()).throughput();
        // Sharding spreads the locks, so writes do scale with shards —
        // but each node stays single-writer: per-node W is flat.
        let per_node_1 = w1;
        let per_node_4 = w4 / 4.0;
        assert!(
            (per_node_4 / per_node_1 - 1.0).abs() < 0.3,
            "per-node W must stay lock-bound: {per_node_1} vs {per_node_4}"
        );
    }

    #[test]
    fn write_latency_reflects_lock_queueing() {
        let result = quick_run(1, Workload::w());
        let w = result.mean_latency_ms(OpKind::Insert).unwrap();
        let r = quick_run(1, Workload::r());
        let read = r.mean_latency_ms(OpKind::Read).unwrap();
        assert!(
            w > read,
            "lock queueing must show in write latency: {w} vs {read}"
        );
    }

    #[test]
    fn range_scans_stay_on_one_shard() {
        let mut engine = Engine::new();
        let mut s = make(&mut engine, 4);
        for seq in 0..4_000 {
            s.load(&record_for_seq(seq));
        }
        let (outcome, plan) = s.plan_op(
            0,
            &Operation::Scan {
                start: record_for_seq(10).key,
                len: 50,
            },
            &mut engine,
        );
        assert!(matches!(outcome, OpOutcome::Scanned(n) if n > 0));
        // Single-shard scan: far fewer steps than an n-way fan-out.
        assert!(
            plan.total_steps() < 15,
            "scan should not fan out: {}",
            plan.total_steps()
        );
    }

    #[test]
    fn bson_bloat_shows_in_disk_usage() {
        let mut engine = Engine::new();
        let mut s = make(&mut engine, 2);
        for seq in 0..10_000 {
            s.load(&record_for_seq(seq));
        }
        let per_node = s.disk_bytes_per_node().unwrap();
        assert_eq!(per_node, 390 * 5_000);
        let expansion = 390.0 / 75.0;
        assert!(expansion > 5.0, "BSON bloat must exceed 5x raw");
    }
}
