//! Hash functions used by the client-side routing layers.
//!
//! Implemented from their specifications because the workspace is
//! self-contained:
//!
//! * [`murmur2_64a`] — MurmurHash64A, the default key hasher of the Jedis
//!   sharding library (§4.4/§5.1: the paper tried "both supported hashing
//!   algorithms in Jedis, MurMurHash and MD5").
//! * [`md5`] — RFC 1321, used by Cassandra's `RandomPartitioner` to place
//!   keys on the token ring, and Jedis's alternative hasher.
//! * [`fnv1a64`] — cheap general-purpose hash for internal sharding.

/// MurmurHash64A (Austin Appleby), seed-parameterised.
pub fn murmur2_64a(data: &[u8], seed: u64) -> u64 {
    const M: u64 = 0xc6a4_a793_5bd1_e995;
    const R: u32 = 47;
    let mut h: u64 = seed ^ (data.len() as u64).wrapping_mul(M);
    let chunks = data.chunks_exact(8);
    let tail = chunks.remainder();
    for chunk in chunks {
        let mut k = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        k = k.wrapping_mul(M);
        k ^= k >> R;
        k = k.wrapping_mul(M);
        h ^= k;
        h = h.wrapping_mul(M);
    }
    for (i, &b) in tail.iter().enumerate() {
        h ^= u64::from(b) << (8 * i);
    }
    if !tail.is_empty() {
        h = h.wrapping_mul(M);
    }
    h ^= h >> R;
    h = h.wrapping_mul(M);
    h ^= h >> R;
    h
}

/// FNV-1a 64-bit.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// MD5 (RFC 1321). Returns the 16-byte digest.
pub fn md5(message: &[u8]) -> [u8; 16] {
    const S: [u32; 64] = [
        7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 5, 9, 14, 20, 5, 9, 14, 20, 5,
        9, 14, 20, 5, 9, 14, 20, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 6, 10,
        15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
    ];
    const K: [u32; 64] = [
        0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613,
        0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193,
        0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d,
        0x02441453, 0xd8a1e681, 0xe7d3fbc8, 0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
        0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122,
        0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
        0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665, 0xf4292244,
        0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
        0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb,
        0xeb86d391,
    ];
    let mut a0: u32 = 0x6745_2301;
    let mut b0: u32 = 0xefcd_ab89;
    let mut c0: u32 = 0x98ba_dcfe;
    let mut d0: u32 = 0x1032_5476;

    // Padding: 0x80, zeros, 64-bit little-endian bit length.
    let bit_len = (message.len() as u64).wrapping_mul(8);
    let mut padded = message.to_vec();
    padded.push(0x80);
    while padded.len() % 64 != 56 {
        padded.push(0);
    }
    padded.extend_from_slice(&bit_len.to_le_bytes());

    for block in padded.chunks_exact(64) {
        let mut m = [0u32; 16];
        for (i, w) in m.iter_mut().enumerate() {
            *w = u32::from_le_bytes(block[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        let (mut a, mut b, mut c, mut d) = (a0, b0, c0, d0);
        for i in 0..64 {
            let (f, g) = match i {
                0..=15 => ((b & c) | (!b & d), i),
                16..=31 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                32..=47 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            let sum = a.wrapping_add(f).wrapping_add(K[i]).wrapping_add(m[g]);
            b = b.wrapping_add(sum.rotate_left(S[i]));
            a = tmp;
        }
        a0 = a0.wrapping_add(a);
        b0 = b0.wrapping_add(b);
        c0 = c0.wrapping_add(c);
        d0 = d0.wrapping_add(d);
    }
    let mut digest = [0u8; 16];
    digest[0..4].copy_from_slice(&a0.to_le_bytes());
    digest[4..8].copy_from_slice(&b0.to_le_bytes());
    digest[8..12].copy_from_slice(&c0.to_le_bytes());
    digest[12..16].copy_from_slice(&d0.to_le_bytes());
    digest
}

/// MD5 digest folded to a u128 (big-endian interpretation, as Cassandra's
/// `RandomPartitioner` does before taking `abs mod 2^127`).
pub fn md5_u128(message: &[u8]) -> u128 {
    u128::from_be_bytes(md5(message))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn md5_rfc1321_test_vectors() {
        // The reference vectors from RFC 1321 appendix A.5.
        assert_eq!(hex(&md5(b"")), "d41d8cd98f00b204e9800998ecf8427e");
        assert_eq!(hex(&md5(b"a")), "0cc175b9c0f1b6a831c399e269772661");
        assert_eq!(hex(&md5(b"abc")), "900150983cd24fb0d6963f7d28e17f72");
        assert_eq!(
            hex(&md5(b"message digest")),
            "f96b697d7cb7938d525a2f31aaf161d0"
        );
        assert_eq!(
            hex(&md5(b"abcdefghijklmnopqrstuvwxyz")),
            "c3fcd3d76192e4007dfb496cca67e13b"
        );
        assert_eq!(
            hex(&md5(
                b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
            )),
            "d174ab98d277d9f5a5611c2c9f419d9f"
        );
        assert_eq!(
            hex(&md5(
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890"
            )),
            "57edf4a22be3c955ac49da2e2107b67a"
        );
    }

    #[test]
    fn md5_handles_block_boundary_lengths() {
        // Lengths 55, 56, 63, 64, 65 exercise the padding edge cases.
        for len in [55usize, 56, 63, 64, 65, 119, 120] {
            let data = vec![b'x'; len];
            let d = md5(&data);
            assert_eq!(d.len(), 16);
            // Digest must differ from the digest of length-1 variant.
            let d2 = md5(&data[..len - 1]);
            assert_ne!(d, d2, "digest collision at boundary {len}");
        }
    }

    #[test]
    fn murmur_is_deterministic_and_spreads() {
        let a = murmur2_64a(b"SHARD-0-NODE-1", 0x1234ABCD);
        let b = murmur2_64a(b"SHARD-0-NODE-1", 0x1234ABCD);
        let c = murmur2_64a(b"SHARD-0-NODE-2", 0x1234ABCD);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Spread check: bucket 10k hashed keys into 16 bins.
        let mut bins = [0u32; 16];
        for i in 0..10_000u64 {
            let h = murmur2_64a(format!("key{i}").as_bytes(), 0);
            bins[(h % 16) as usize] += 1;
        }
        assert!(bins.iter().all(|&b| (400..900).contains(&b)), "{bins:?}");
    }

    #[test]
    fn murmur_tail_lengths_all_distinct() {
        let hashes: Vec<u64> = (0..8).map(|n| murmur2_64a(&vec![7u8; n], 0)).collect();
        // Cardinality check only, never iterated. audit:allow(hash-order)
        let distinct: std::collections::HashSet<_> = hashes.iter().collect();
        assert_eq!(distinct.len(), hashes.len());
    }

    #[test]
    fn fnv_matches_known_vector() {
        // FNV-1a("") = offset basis; FNV-1a("a") = 0xaf63dc4c8601ec8c.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn md5_u128_is_big_endian_fold() {
        let d = md5(b"abc");
        assert_eq!(md5_u128(b"abc").to_be_bytes(), d);
    }
}
