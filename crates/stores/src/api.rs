//! The common interface of the six stores plus shared plan-building
//! helpers (client/server network hops, receipt → plan conversion).

use apm_core::ops::{OpOutcome, Operation};
use apm_core::record::Record;
use apm_core::snap::{SnapError, SnapReader, SnapWriter};
use apm_sim::cluster::NodeResources;
use apm_sim::kernel::Token;
use apm_sim::{ClusterSpec, Engine, FailMode, FaultEvent, FaultKind, Plan, SimDuration, Step};
use apm_storage::receipt::{CostReceipt, DiskIo};

/// Bit marking a token as a background job rather than a client op.
pub const BACKGROUND_BIT: u64 = 1 << 63;

/// Bit marking a token as a fault-schedule sentinel (the benchmark
/// runner's timers for node crash/restart/slowdown transitions).
pub const FAULT_BIT: u64 = 1 << 62;

/// Builds the token for background job `job_id`.
pub fn background_token(job_id: u64) -> Token {
    debug_assert!(job_id & (BACKGROUND_BIT | FAULT_BIT) == 0);
    Token(BACKGROUND_BIT | job_id)
}

/// Builds the sentinel token for fault-schedule event `index`.
pub fn fault_token(index: u64) -> Token {
    debug_assert!(index & (BACKGROUND_BIT | FAULT_BIT) == 0);
    Token(FAULT_BIT | index)
}

/// Splits a completed token into `(is_background, id)`.
pub fn split_token(token: Token) -> (bool, u64) {
    (token.0 & BACKGROUND_BIT != 0, token.0 & !BACKGROUND_BIT)
}

/// Splits a completed token into `(is_fault_sentinel, index)`.
pub fn split_fault_token(token: Token) -> (bool, u64) {
    (token.0 & FAULT_BIT != 0, token.0 & !FAULT_BIT)
}

/// Bit marking a resilient-mode token as a hedge attempt (the
/// speculative duplicate read issued to an alternative replica).
pub const HEDGE_BIT: u64 = 1 << 61;

/// Bit marking a resilient-mode token as a hedge *trigger*: the pure
/// delay the driver arms alongside a primary read; its completion is the
/// signal to launch the hedge, never a measured response.
pub const HEDGE_TRIGGER_BIT: u64 = 1 << 60;

/// Bits of a resilient-mode token carrying the client id.
pub const CLIENT_BITS: u32 = 20;

const CLIENT_MASK: u64 = (1 << CLIENT_BITS) - 1;
const EPOCH_MASK: u64 = (1 << (60 - CLIENT_BITS)) - 1;

/// Which role a resilient-mode attempt token plays.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttemptKind {
    /// The primary (or retried) attempt of a logical op.
    Primary,
    /// The speculative hedge attempt.
    Hedge,
    /// The delay event that fires to launch a hedge.
    HedgeTrigger,
}

/// Builds a resilient-mode token for `client`'s attempt `epoch`. Epochs
/// advance on every attempt submission, so stale completions (cancelled
/// losers, late stragglers) are recognised by epoch mismatch.
pub fn attempt_token(client: u32, epoch: u64) -> Token {
    debug_assert!(u64::from(client) <= CLIENT_MASK && epoch <= EPOCH_MASK);
    Token((epoch & EPOCH_MASK) << CLIENT_BITS | u64::from(client))
}

/// Builds the hedge-attempt token for `client`'s attempt `epoch`.
pub fn hedge_token(client: u32, epoch: u64) -> Token {
    Token(HEDGE_BIT | attempt_token(client, epoch).0)
}

/// Builds the hedge-trigger token for `client`'s attempt `epoch`.
pub fn hedge_trigger_token(client: u32, epoch: u64) -> Token {
    Token(HEDGE_TRIGGER_BIT | attempt_token(client, epoch).0)
}

/// Splits a resilient-mode client token into `(client, epoch, kind)`.
/// Callers must have already excluded background and fault sentinels.
pub fn split_attempt_token(token: Token) -> (u32, u64, AttemptKind) {
    let kind = if token.0 & HEDGE_BIT != 0 {
        AttemptKind::Hedge
    } else if token.0 & HEDGE_TRIGGER_BIT != 0 {
        AttemptKind::HedgeTrigger
    } else {
        AttemptKind::Primary
    };
    let client = (token.0 & CLIENT_MASK) as u32;
    let epoch = (token.0 >> CLIENT_BITS) & EPOCH_MASK;
    (client, epoch, kind)
}

/// Applies a fault transition to the kernel resources of the affected
/// node: the engine-level half of failure injection, common to every
/// store. Stores layer their recovery logic (replica failover, hinted
/// handoff, region reassignment, data loss) on top in
/// [`DistributedStore::on_fault`].
pub fn apply_node_fault(ctx: &StoreCtx, engine: &mut Engine, event: &FaultEvent) {
    if event.node >= ctx.servers.len() {
        return; // schedule refers to a node this run doesn't have
    }
    let node = &ctx.servers[event.node];
    let reject = FailMode::Reject {
        latency: apm_sim::fault::CRASH_ERROR_LATENCY,
    };
    match event.kind {
        FaultKind::Crash => {
            engine.fail_resource(node.cpu, reject);
            engine.fail_resource(node.disk, reject);
            engine.fail_resource(node.nic, reject);
        }
        FaultKind::Restart => {
            engine.restore_resource(node.cpu);
            engine.restore_resource(node.disk);
            engine.restore_resource(node.nic);
            engine.set_resource_slowdown(node.cpu, 1);
            engine.set_resource_slowdown(node.disk, 1);
            engine.set_resource_slowdown(node.nic, 1);
        }
        FaultKind::DiskSlow { factor } => engine.set_resource_slowdown(node.disk, factor.max(1)),
        FaultKind::DiskRestore => engine.set_resource_slowdown(node.disk, 1),
        FaultKind::PartitionStart => engine.fail_resource(node.nic, FailMode::Stall),
        FaultKind::PartitionEnd => engine.restore_resource(node.nic),
        FaultKind::FailSlow { factor } => {
            let factor = factor.max(1);
            engine.set_resource_slowdown(node.cpu, factor);
            engine.set_resource_slowdown(node.disk, factor);
            engine.set_resource_slowdown(node.nic, factor);
        }
        FaultKind::FailSlowEnd => {
            engine.set_resource_slowdown(node.cpu, 1);
            engine.set_resource_slowdown(node.disk, 1);
            engine.set_resource_slowdown(node.nic, 1);
        }
    }
}

/// Everything a store needs about its simulated environment.
#[derive(Clone, Debug)]
pub struct StoreCtx {
    /// The hardware platform.
    pub cluster: ClusterSpec,
    /// Server node resources, one entry per storage node.
    pub servers: Vec<NodeResources>,
    /// Client (workload generator) machine resources.
    pub clients: Vec<NodeResources>,
    /// Dataset scale factor (1.0 = the paper's 10 M records/node). Memory
    /// budgets (page cache, buffer pools, maxmemory) scale with it so the
    /// data:RAM ratio matches the paper.
    pub scale: f64,
    /// Seed for store-internal randomness (cache sampling, token draws).
    pub seed: u64,
}

impl StoreCtx {
    /// Instantiates server and client machines on `engine`.
    ///
    /// `client_machines` follows §3: "we used up to 5 nodes to generate
    /// the workload" for up to 12 server nodes — a ≈2.4:1 ratio — except
    /// Redis, which "had to double the number of machines for the YCSB
    /// clients" (§5.1).
    pub fn new(
        engine: &mut Engine,
        cluster: ClusterSpec,
        server_count: u32,
        client_machines: u32,
        scale: f64,
        seed: u64,
    ) -> StoreCtx {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let servers = cluster.instantiate(engine, server_count);
        let clients: Vec<NodeResources> = (0..client_machines.max(1))
            .map(|i| NodeResources {
                cpu: engine.add_resource(format!("client{i}.cpu"), cluster.node.cores),
                disk: engine.add_resource(format!("client{i}.disk"), 1),
                nic: engine.add_resource(format!("client{i}.nic"), 1),
            })
            .collect();
        StoreCtx {
            cluster,
            servers,
            clients,
            scale,
            seed,
        }
    }

    /// The paper's standard client fleet size for `servers` server nodes.
    pub fn standard_client_machines(servers: u32) -> u32 {
        ((servers as f64 / 2.4).ceil() as u32).clamp(1, 5)
    }

    /// Number of server nodes.
    pub fn node_count(&self) -> usize {
        self.servers.len()
    }

    /// Client machine serving connection `client_id` (round-robin).
    pub fn client_machine(&self, client_id: u32) -> &NodeResources {
        &self.clients[client_id as usize % self.clients.len()]
    }

    /// A node's RAM budget scaled to the dataset scale factor.
    pub fn scaled_ram(&self) -> u64 {
        (self.cluster.node.ram_bytes as f64 * self.scale) as u64
    }
}

/// CPU service-demand model converting a [`CostReceipt`] into core time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Fixed per-operation CPU time (request parsing, dispatch), ns.
    pub base_ns: u64,
    /// CPU time per data-structure probe, ns.
    pub per_probe_ns: u64,
    /// CPU time per payload byte (serialisation), ns.
    pub per_byte_ns: u64,
}

impl CostModel {
    /// Core time for `receipt`.
    pub fn cpu(&self, receipt: &CostReceipt) -> SimDuration {
        SimDuration::from_nanos(
            self.base_ns
                + receipt.probes * self.per_probe_ns
                + receipt.bytes_touched * self.per_byte_ns,
        )
    }
}

/// Builds the server-local steps for an operation: CPU work, then each
/// disk access queued on the node's disk.
pub fn server_steps(
    node: &NodeResources,
    cluster: &ClusterSpec,
    cpu: SimDuration,
    ios: &[DiskIo],
) -> Vec<Step> {
    let mut steps = Vec::with_capacity(1 + ios.len());
    if cpu != SimDuration::ZERO {
        steps.push(Step::Acquire {
            resource: node.cpu,
            service: cpu,
        });
    }
    for io in ios {
        let pattern = if io.class.is_random() {
            apm_sim::IoPattern::Random
        } else {
            apm_sim::IoPattern::Sequential
        };
        steps.push(Step::Acquire {
            resource: node.disk,
            service: cluster.node.disk.service(io.bytes, pattern),
        });
    }
    steps
}

/// Wraps server-side steps into a full client round trip:
/// client CPU → client NIC → wire → server NIC → *server steps* →
/// server NIC → wire → client NIC.
#[allow(clippy::too_many_arguments)]
pub fn round_trip_plan(
    ctx: &StoreCtx,
    client_id: u32,
    server: &NodeResources,
    client_cpu: SimDuration,
    request_bytes: u64,
    response_bytes: u64,
    server_plan: Vec<Step>,
) -> Plan {
    let client = ctx.client_machine(client_id);
    let net = &ctx.cluster.net;
    let mut steps = Vec::with_capacity(server_plan.len() + 7);
    if client_cpu != SimDuration::ZERO {
        steps.push(Step::Acquire {
            resource: client.cpu,
            service: client_cpu,
        });
    }
    steps.push(Step::Acquire {
        resource: client.nic,
        service: net.transfer(request_bytes),
    });
    steps.push(Step::Delay(net.one_way_latency));
    steps.push(Step::Acquire {
        resource: server.nic,
        service: net.transfer(request_bytes),
    });
    steps.extend(server_plan);
    steps.push(Step::Acquire {
        resource: server.nic,
        service: net.transfer(response_bytes),
    });
    steps.push(Step::Delay(net.one_way_latency));
    steps.push(Step::Acquire {
        resource: client.nic,
        service: net.transfer(response_bytes),
    });
    Plan(steps)
}

/// A client-local plan (for rejected operations: the error is produced
/// without contacting a server, e.g. Voldemort scans).
pub fn client_only_plan(ctx: &StoreCtx, client_id: u32, cpu: SimDuration) -> Plan {
    let client = ctx.client_machine(client_id);
    Plan(vec![Step::Acquire {
        resource: client.cpu,
        service: cpu,
    }])
}

/// The interface every benchmarked store implements.
pub trait DistributedStore {
    /// Store name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// The store's simulated environment (used by the default fault
    /// handling to locate the affected node's resources).
    fn ctx(&self) -> &StoreCtx;

    /// Load-phase insert: updates real state, settling any background
    /// work immediately (load time is not measured, §3 reloads per run).
    fn load(&mut self, record: &Record);

    /// Hook called once after the load phase (flush memtables, etc.).
    fn finish_load(&mut self) {}

    /// Executes `op` against real state and returns the outcome plus the
    /// physical plan for the simulator. May submit background plans on
    /// `engine` (tagged with [`background_token`]).
    fn plan_op(&mut self, client_id: u32, op: &Operation, engine: &mut Engine)
        -> (OpOutcome, Plan);

    /// Called when a background job's plan completes.
    fn on_background(&mut self, job_id: u64, engine: &mut Engine) {
        let _ = (job_id, engine);
    }

    /// Called once mid-run when `RunConfig::event_at_secs` fires —
    /// topology-change experiments (e.g. Cassandra node bootstrap).
    fn on_timed_event(&mut self, engine: &mut Engine) {
        let _ = engine;
    }

    /// Called when a scheduled [`FaultEvent`] fires. The default applies
    /// the engine-level resource transition only (requests to the node
    /// fail or stall); stores with richer failure semantics override this
    /// to add failover, hinted handoff, WAL replay, or data loss, and
    /// must still call [`apply_node_fault`] for the kernel half.
    fn on_fault(&mut self, event: &FaultEvent, engine: &mut Engine) {
        apply_node_fault(self.ctx(), engine, event);
    }

    /// The server node the store's client-side routing would send `op`
    /// to right now — the key a per-target circuit breaker shards on.
    /// `None` (the default) disables breaking for this store.
    fn plan_target(&self, op: &Operation) -> Option<usize> {
        let _ = op;
        None
    }

    /// Builds the plan for a *hedged* duplicate of a read: the same
    /// logical op sent to a different live replica/coordinator than the
    /// primary attempt would use. `None` (the default) means the store
    /// has no alternative target and the hedge is skipped.
    fn hedge_read_plan(
        &mut self,
        client_id: u32,
        op: &Operation,
        engine: &mut Engine,
    ) -> Option<Plan> {
        let _ = (client_id, op, engine);
        None
    }

    /// Whether the store's YCSB client supports scans (§5.4: Voldemort's
    /// does not).
    fn supports_scans(&self) -> bool {
        true
    }

    /// Client connection cap, if the store's client library imposes one
    /// (§6: Voldemort).
    fn connection_cap(&self) -> Option<u32> {
        None
    }

    /// Per-node disk usage in bytes after load (Fig 17); `None` for
    /// memory-only stores (Redis, VoltDB — "do not store the data on
    /// disk", §5.7).
    fn disk_bytes_per_node(&self) -> Option<u64>;

    /// Serializes all run-varying store state (data structures, background
    /// job queues, failure bookkeeping) for a checkpoint. Configuration
    /// that the constructor re-derives (topology sizes, budgets, cost
    /// models) is *not* written. The default writes nothing — correct only
    /// for stores whose state is fully reconstructed by `load`.
    fn snap_state(&self, w: &mut SnapWriter) {
        let _ = w;
    }

    /// Restores the state written by [`DistributedStore::snap_state`] into
    /// a freshly constructed *and loaded* store built from the same
    /// config. Implementations must leave the store byte-equivalent to
    /// the one that was snapshotted, including any topology grown mid-run.
    fn restore_state(&mut self, r: &mut SnapReader, engine: &mut Engine) -> Result<(), SnapError> {
        let _ = (r, engine);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apm_sim::SimTime;

    #[test]
    fn token_split_roundtrips() {
        let t = background_token(42);
        assert_eq!(split_token(t), (true, 42));
        assert_eq!(split_token(Token(7)), (false, 7));
    }

    #[test]
    fn background_token_roundtrips_across_the_id_space() {
        for id in [0u64, 1, 2, 1 << 20, (1 << 62) - 1] {
            let (bg, back) = split_token(background_token(id));
            assert!(bg, "id {id} lost the background bit");
            assert_eq!(back, id, "id {id} did not roundtrip");
        }
    }

    #[test]
    fn fault_token_roundtrips_and_is_disjoint_from_background() {
        for idx in [0u64, 1, 5, 1 << 10] {
            let t = fault_token(idx);
            let (is_fault, back) = split_fault_token(t);
            assert!(is_fault);
            assert_eq!(back, idx);
            let (is_bg, _) = split_token(t);
            assert!(!is_bg, "fault tokens must not read as background");
        }
        let (is_fault, _) = split_fault_token(background_token(3));
        assert!(!is_fault, "background tokens must not read as fault");
        let (is_fault, idx) = split_fault_token(Token(9));
        assert_eq!((is_fault, idx), (false, 9));
    }

    #[test]
    fn attempt_tokens_roundtrip_client_epoch_and_kind() {
        for (client, epoch) in [
            (0u32, 0u64),
            (7, 1),
            (999, 12_345),
            ((1 << 20) - 1, (1 << 40) - 1),
        ] {
            assert_eq!(
                split_attempt_token(attempt_token(client, epoch)),
                (client, epoch, AttemptKind::Primary)
            );
            assert_eq!(
                split_attempt_token(hedge_token(client, epoch)),
                (client, epoch, AttemptKind::Hedge)
            );
            assert_eq!(
                split_attempt_token(hedge_trigger_token(client, epoch)),
                (client, epoch, AttemptKind::HedgeTrigger)
            );
        }
    }

    #[test]
    fn attempt_tokens_are_disjoint_from_background_and_fault_sentinels() {
        for t in [
            attempt_token(3, 17),
            hedge_token(3, 17),
            hedge_trigger_token(3, 17),
        ] {
            assert!(!split_token(t).0, "attempt token read as background");
            assert!(!split_fault_token(t).0, "attempt token read as fault");
        }
    }

    #[test]
    fn apply_node_fault_drives_kernel_resource_state() {
        use apm_sim::SimTime;
        let mut engine = Engine::new();
        let ctx = StoreCtx::new(&mut engine, ClusterSpec::cluster_m(), 2, 1, 0.1, 1);
        let node = ctx.servers[1];
        let at = SimTime::ZERO;
        apply_node_fault(
            &ctx,
            &mut engine,
            &FaultEvent {
                at,
                node: 1,
                kind: FaultKind::Crash,
            },
        );
        assert!(engine.resource_is_down(node.cpu));
        assert!(engine.resource_is_down(node.disk));
        assert!(engine.resource_is_down(node.nic));
        assert!(
            !engine.resource_is_down(ctx.servers[0].cpu),
            "other nodes unaffected"
        );
        apply_node_fault(
            &ctx,
            &mut engine,
            &FaultEvent {
                at,
                node: 1,
                kind: FaultKind::Restart,
            },
        );
        assert!(!engine.resource_is_down(node.cpu));
        apply_node_fault(
            &ctx,
            &mut engine,
            &FaultEvent {
                at,
                node: 1,
                kind: FaultKind::DiskSlow { factor: 6 },
            },
        );
        assert_eq!(engine.resource_slowdown(node.disk), 6);
        apply_node_fault(
            &ctx,
            &mut engine,
            &FaultEvent {
                at,
                node: 1,
                kind: FaultKind::DiskRestore,
            },
        );
        assert_eq!(engine.resource_slowdown(node.disk), 1);
        // Out-of-range node indices are ignored, not a panic.
        apply_node_fault(
            &ctx,
            &mut engine,
            &FaultEvent {
                at,
                node: 99,
                kind: FaultKind::Crash,
            },
        );
    }

    #[test]
    fn ctx_instantiates_servers_and_clients() {
        let mut engine = Engine::new();
        let ctx = StoreCtx::new(&mut engine, ClusterSpec::cluster_m(), 4, 2, 0.02, 1);
        assert_eq!(ctx.node_count(), 4);
        assert_eq!(ctx.clients.len(), 2);
        // Round-robin client machine assignment.
        assert_eq!(ctx.client_machine(0).nic, ctx.client_machine(2).nic);
        assert_ne!(ctx.client_machine(0).nic, ctx.client_machine(1).nic);
    }

    #[test]
    fn standard_client_fleet_matches_paper_ratio() {
        assert_eq!(StoreCtx::standard_client_machines(1), 1);
        assert_eq!(StoreCtx::standard_client_machines(4), 2);
        assert_eq!(StoreCtx::standard_client_machines(12), 5);
        assert_eq!(
            StoreCtx::standard_client_machines(16),
            5,
            "fleet caps at 5 (§3)"
        );
    }

    #[test]
    fn no_client_machine_runs_more_than_307_threads() {
        // §3: "So no client node was running more than 307 threads" —
        // 1536 connections over 5 machines.
        let machines = StoreCtx::standard_client_machines(12);
        let connections = 128 * 12u32;
        let per_machine = connections.div_ceil(machines);
        assert_eq!(
            per_machine,
            308 - 1 + 1,
            "1536 / 5 rounds to 308; the paper's 307 is the floor"
        );
        assert!(connections / machines <= 307);
    }

    #[test]
    fn scaled_ram_follows_scale() {
        let mut engine = Engine::new();
        let ctx = StoreCtx::new(&mut engine, ClusterSpec::cluster_m(), 1, 1, 0.5, 1);
        assert_eq!(ctx.scaled_ram(), 8 << 30);
    }

    #[test]
    fn cost_model_is_linear() {
        let model = CostModel {
            base_ns: 1_000,
            per_probe_ns: 100,
            per_byte_ns: 2,
        };
        let mut r = CostReceipt::new();
        r.probe(3).touch(75);
        assert_eq!(model.cpu(&r), SimDuration::from_nanos(1_000 + 300 + 150));
    }

    #[test]
    fn round_trip_plan_includes_both_nics_and_latency() {
        let mut engine = Engine::new();
        let ctx = StoreCtx::new(&mut engine, ClusterSpec::cluster_m(), 1, 1, 0.1, 1);
        let server = ctx.servers[0];
        let plan = round_trip_plan(
            &ctx,
            0,
            &server,
            SimDuration::from_micros(10),
            100,
            200,
            vec![Step::Acquire {
                resource: server.cpu,
                service: SimDuration::from_micros(50),
            }],
        );
        // Minimum duration: client cpu + 2 latencies + transfers + server work.
        let expected_floor = SimDuration::from_micros(10 + 80 + 80 + 50);
        assert!(plan.min_duration() >= expected_floor);
        // Executes cleanly on the engine.
        engine.submit(plan, Token(1));
        let c = engine.next_completion().expect("plan runs");
        assert!(c.latency() >= expected_floor);
        assert!(c.finished > SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn out_of_range_scale_panics() {
        let mut engine = Engine::new();
        StoreCtx::new(&mut engine, ClusterSpec::cluster_m(), 1, 1, 0.0, 1);
    }
}
