//! The common interface of the six stores plus shared plan-building
//! helpers (client/server network hops, receipt → plan conversion).

use apm_core::ops::{OpOutcome, Operation};
use apm_core::record::Record;
use apm_sim::cluster::NodeResources;
use apm_sim::kernel::Token;
use apm_sim::{ClusterSpec, Engine, Plan, SimDuration, Step};
use apm_storage::receipt::{CostReceipt, DiskIo};

/// Bit marking a token as a background job rather than a client op.
pub const BACKGROUND_BIT: u64 = 1 << 63;

/// Builds the token for background job `job_id`.
pub fn background_token(job_id: u64) -> Token {
    debug_assert!(job_id & BACKGROUND_BIT == 0);
    Token(BACKGROUND_BIT | job_id)
}

/// Splits a completed token into `(is_background, id)`.
pub fn split_token(token: Token) -> (bool, u64) {
    (token.0 & BACKGROUND_BIT != 0, token.0 & !BACKGROUND_BIT)
}

/// Everything a store needs about its simulated environment.
#[derive(Clone, Debug)]
pub struct StoreCtx {
    /// The hardware platform.
    pub cluster: ClusterSpec,
    /// Server node resources, one entry per storage node.
    pub servers: Vec<NodeResources>,
    /// Client (workload generator) machine resources.
    pub clients: Vec<NodeResources>,
    /// Dataset scale factor (1.0 = the paper's 10 M records/node). Memory
    /// budgets (page cache, buffer pools, maxmemory) scale with it so the
    /// data:RAM ratio matches the paper.
    pub scale: f64,
    /// Seed for store-internal randomness (cache sampling, token draws).
    pub seed: u64,
}

impl StoreCtx {
    /// Instantiates server and client machines on `engine`.
    ///
    /// `client_machines` follows §3: "we used up to 5 nodes to generate
    /// the workload" for up to 12 server nodes — a ≈2.4:1 ratio — except
    /// Redis, which "had to double the number of machines for the YCSB
    /// clients" (§5.1).
    pub fn new(
        engine: &mut Engine,
        cluster: ClusterSpec,
        server_count: u32,
        client_machines: u32,
        scale: f64,
        seed: u64,
    ) -> StoreCtx {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let servers = cluster.instantiate(engine, server_count);
        let clients: Vec<NodeResources> = (0..client_machines.max(1))
            .map(|i| NodeResources {
                cpu: engine.add_resource(format!("client{i}.cpu"), cluster.node.cores),
                disk: engine.add_resource(format!("client{i}.disk"), 1),
                nic: engine.add_resource(format!("client{i}.nic"), 1),
            })
            .collect();
        StoreCtx { cluster, servers, clients, scale, seed }
    }

    /// The paper's standard client fleet size for `servers` server nodes.
    pub fn standard_client_machines(servers: u32) -> u32 {
        ((servers as f64 / 2.4).ceil() as u32).clamp(1, 5)
    }

    /// Number of server nodes.
    pub fn node_count(&self) -> usize {
        self.servers.len()
    }

    /// Client machine serving connection `client_id` (round-robin).
    pub fn client_machine(&self, client_id: u32) -> &NodeResources {
        &self.clients[client_id as usize % self.clients.len()]
    }

    /// A node's RAM budget scaled to the dataset scale factor.
    pub fn scaled_ram(&self) -> u64 {
        (self.cluster.node.ram_bytes as f64 * self.scale) as u64
    }
}

/// CPU service-demand model converting a [`CostReceipt`] into core time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Fixed per-operation CPU time (request parsing, dispatch), ns.
    pub base_ns: u64,
    /// CPU time per data-structure probe, ns.
    pub per_probe_ns: u64,
    /// CPU time per payload byte (serialisation), ns.
    pub per_byte_ns: u64,
}

impl CostModel {
    /// Core time for `receipt`.
    pub fn cpu(&self, receipt: &CostReceipt) -> SimDuration {
        SimDuration::from_nanos(
            self.base_ns
                + receipt.probes * self.per_probe_ns
                + receipt.bytes_touched * self.per_byte_ns,
        )
    }
}

/// Builds the server-local steps for an operation: CPU work, then each
/// disk access queued on the node's disk.
pub fn server_steps(
    node: &NodeResources,
    cluster: &ClusterSpec,
    cpu: SimDuration,
    ios: &[DiskIo],
) -> Vec<Step> {
    let mut steps = Vec::with_capacity(1 + ios.len());
    if cpu != SimDuration::ZERO {
        steps.push(Step::Acquire { resource: node.cpu, service: cpu });
    }
    for io in ios {
        let pattern = if io.class.is_random() {
            apm_sim::IoPattern::Random
        } else {
            apm_sim::IoPattern::Sequential
        };
        steps.push(Step::Acquire {
            resource: node.disk,
            service: cluster.node.disk.service(io.bytes, pattern),
        });
    }
    steps
}

/// Wraps server-side steps into a full client round trip:
/// client CPU → client NIC → wire → server NIC → *server steps* →
/// server NIC → wire → client NIC.
#[allow(clippy::too_many_arguments)]
pub fn round_trip_plan(
    ctx: &StoreCtx,
    client_id: u32,
    server: &NodeResources,
    client_cpu: SimDuration,
    request_bytes: u64,
    response_bytes: u64,
    server_plan: Vec<Step>,
) -> Plan {
    let client = ctx.client_machine(client_id);
    let net = &ctx.cluster.net;
    let mut steps = Vec::with_capacity(server_plan.len() + 7);
    if client_cpu != SimDuration::ZERO {
        steps.push(Step::Acquire { resource: client.cpu, service: client_cpu });
    }
    steps.push(Step::Acquire { resource: client.nic, service: net.transfer(request_bytes) });
    steps.push(Step::Delay(net.one_way_latency));
    steps.push(Step::Acquire { resource: server.nic, service: net.transfer(request_bytes) });
    steps.extend(server_plan);
    steps.push(Step::Acquire { resource: server.nic, service: net.transfer(response_bytes) });
    steps.push(Step::Delay(net.one_way_latency));
    steps.push(Step::Acquire { resource: client.nic, service: net.transfer(response_bytes) });
    Plan(steps)
}

/// A client-local plan (for rejected operations: the error is produced
/// without contacting a server, e.g. Voldemort scans).
pub fn client_only_plan(ctx: &StoreCtx, client_id: u32, cpu: SimDuration) -> Plan {
    let client = ctx.client_machine(client_id);
    Plan(vec![Step::Acquire { resource: client.cpu, service: cpu }])
}

/// The interface every benchmarked store implements.
pub trait DistributedStore {
    /// Store name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Load-phase insert: updates real state, settling any background
    /// work immediately (load time is not measured, §3 reloads per run).
    fn load(&mut self, record: &Record);

    /// Hook called once after the load phase (flush memtables, etc.).
    fn finish_load(&mut self) {}

    /// Executes `op` against real state and returns the outcome plus the
    /// physical plan for the simulator. May submit background plans on
    /// `engine` (tagged with [`background_token`]).
    fn plan_op(&mut self, client_id: u32, op: &Operation, engine: &mut Engine) -> (OpOutcome, Plan);

    /// Called when a background job's plan completes.
    fn on_background(&mut self, job_id: u64, engine: &mut Engine) {
        let _ = (job_id, engine);
    }

    /// Called once mid-run when `RunConfig::event_at_secs` fires —
    /// topology-change experiments (e.g. Cassandra node bootstrap).
    fn on_timed_event(&mut self, engine: &mut Engine) {
        let _ = engine;
    }

    /// Whether the store's YCSB client supports scans (§5.4: Voldemort's
    /// does not).
    fn supports_scans(&self) -> bool {
        true
    }

    /// Client connection cap, if the store's client library imposes one
    /// (§6: Voldemort).
    fn connection_cap(&self) -> Option<u32> {
        None
    }

    /// Per-node disk usage in bytes after load (Fig 17); `None` for
    /// memory-only stores (Redis, VoltDB — "do not store the data on
    /// disk", §5.7).
    fn disk_bytes_per_node(&self) -> Option<u64>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use apm_sim::SimTime;

    #[test]
    fn token_split_roundtrips() {
        let t = background_token(42);
        assert_eq!(split_token(t), (true, 42));
        assert_eq!(split_token(Token(7)), (false, 7));
    }

    #[test]
    fn ctx_instantiates_servers_and_clients() {
        let mut engine = Engine::new();
        let ctx = StoreCtx::new(&mut engine, ClusterSpec::cluster_m(), 4, 2, 0.02, 1);
        assert_eq!(ctx.node_count(), 4);
        assert_eq!(ctx.clients.len(), 2);
        // Round-robin client machine assignment.
        assert_eq!(ctx.client_machine(0).nic, ctx.client_machine(2).nic);
        assert_ne!(ctx.client_machine(0).nic, ctx.client_machine(1).nic);
    }

    #[test]
    fn standard_client_fleet_matches_paper_ratio() {
        assert_eq!(StoreCtx::standard_client_machines(1), 1);
        assert_eq!(StoreCtx::standard_client_machines(4), 2);
        assert_eq!(StoreCtx::standard_client_machines(12), 5);
        assert_eq!(StoreCtx::standard_client_machines(16), 5, "fleet caps at 5 (§3)");
    }

    #[test]
    fn no_client_machine_runs_more_than_307_threads() {
        // §3: "So no client node was running more than 307 threads" —
        // 1536 connections over 5 machines.
        let machines = StoreCtx::standard_client_machines(12);
        let connections = 128 * 12u32;
        let per_machine = connections.div_ceil(machines);
        assert_eq!(per_machine, 308 - 1 + 1, "1536 / 5 rounds to 308; the paper's 307 is the floor");
        assert!(connections / machines <= 307);
    }

    #[test]
    fn scaled_ram_follows_scale() {
        let mut engine = Engine::new();
        let ctx = StoreCtx::new(&mut engine, ClusterSpec::cluster_m(), 1, 1, 0.5, 1);
        assert_eq!(ctx.scaled_ram(), 8 << 30);
    }

    #[test]
    fn cost_model_is_linear() {
        let model = CostModel { base_ns: 1_000, per_probe_ns: 100, per_byte_ns: 2 };
        let mut r = CostReceipt::new();
        r.probe(3).touch(75);
        assert_eq!(model.cpu(&r), SimDuration::from_nanos(1_000 + 300 + 150));
    }

    #[test]
    fn round_trip_plan_includes_both_nics_and_latency() {
        let mut engine = Engine::new();
        let ctx = StoreCtx::new(&mut engine, ClusterSpec::cluster_m(), 1, 1, 0.1, 1);
        let server = ctx.servers[0];
        let plan = round_trip_plan(
            &ctx,
            0,
            &server,
            SimDuration::from_micros(10),
            100,
            200,
            vec![Step::Acquire { resource: server.cpu, service: SimDuration::from_micros(50) }],
        );
        // Minimum duration: client cpu + 2 latencies + transfers + server work.
        let expected_floor = SimDuration::from_micros(10 + 80 + 80 + 50);
        assert!(plan.min_duration() >= expected_floor);
        // Executes cleanly on the engine.
        engine.submit(plan, Token(1));
        let c = engine.next_completion().expect("plan runs");
        assert!(c.latency() >= expected_floor);
        assert!(c.finished > SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn out_of_range_scale_panics() {
        let mut engine = Engine::new();
        StoreCtx::new(&mut engine, ClusterSpec::cluster_m(), 1, 1, 0.0, 1);
    }
}
