//! The closed-loop benchmark driver.
//!
//! Reproduces the YCSB execution model of §3: a population of
//! connections, each a closed loop (issue → wait → issue), running a
//! [`Workload`] against a store for a warm-up plus measurement window.
//! Maximum-throughput mode lets every connection go flat out ("all of
//! them working as intensively as possible"); bounded mode (§5.6) spaces
//! issues to hit a target aggregate rate.

use crate::api::{
    attempt_token, client_only_plan, fault_token, hedge_token, hedge_trigger_token,
    split_attempt_token, split_fault_token, split_token, AttemptKind, DistributedStore,
};
use crate::resilience::{
    backoff_delay, AdmissionBudget, Breaker, BreakerDecision, HedgeTracker, JitterRng,
    ResiliencePolicy,
};
use apm_core::driver::ClientConfig;
use apm_core::keyspace::record_for_seq;
use apm_core::ops::{OpKind, OpOutcome, Operation};
use apm_core::record::MetricKey;
use apm_core::snap::{self, fnv1a64, Snap, SnapError, SnapReader, SnapWriter, SnapshotHeader};
use apm_core::stats::{pairwise_sum, BenchStats, ResilienceCounters, ResourceSample, Telemetry};
use apm_core::workload::{Workload, WorkloadGenerator};
use apm_sim::kernel::{Completion, PlanHandle, ResourceId, Token};
use apm_sim::{Engine, FaultSchedule, Outcome, Plan, SimDuration, SimTime, Step};
use std::collections::{BTreeMap, VecDeque};

/// Configuration of one benchmark run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// The workload mix.
    pub workload: Workload,
    /// Client population and measurement window.
    pub client: ClientConfig,
    /// Records pre-loaded per server node (paper: 10 M × scale).
    pub records_per_node: u64,
    /// Server node count (for the records total).
    pub nodes: u32,
    /// RNG seed.
    pub seed: u64,
    /// Fire [`DistributedStore::on_timed_event`] once, this many seconds
    /// after the measurement window starts (elasticity experiment).
    pub event_at_secs: Option<f64>,
    /// Node faults to inject; event times are offsets from the start of
    /// the measurement window (the failure-recovery experiments).
    pub faults: FaultSchedule,
    /// Client-side operation deadline. Operations not finished within it
    /// complete as timed out and count as errors — required to observe
    /// network partitions (stalled requests never finish on their own).
    pub op_deadline: Option<SimDuration>,
    /// Record windowed [`Telemetry`] (per-window throughput, error rate,
    /// latency percentiles, per-class server utilisation and queue depth)
    /// with this window size. `None` (the default for all paper figures)
    /// skips recording entirely.
    pub telemetry_window_secs: Option<f64>,
    /// Client-side resilience policies (retry, hedging, circuit breaking,
    /// admission control). `None` (the default) runs the legacy driver
    /// loop byte-identically.
    pub resilience: Option<ResiliencePolicy>,
    /// Checkpoint schedule. `None` (the default) captures nothing and
    /// leaves the driver loop byte-identical to a checkpoint-free run.
    pub checkpoints: Option<CheckpointSpec>,
}

/// Schedule for capturing snapshots during the transaction phase.
#[derive(Clone, Debug)]
pub struct CheckpointSpec {
    /// Capture a checkpoint every this many virtual seconds after the
    /// warm-up ends (checkpoint `k` covers `warmup_end + every·(k+1)`).
    pub every_secs: f64,
    /// Burn one extra workload draw at this offset from warm-up end —
    /// an injected divergence, used to validate bisection. The clock of
    /// the perturbation is virtual, so the clean and perturbed runs stay
    /// byte-identical up to it and differ everywhere after.
    pub perturb_at_secs: Option<f64>,
}

impl CheckpointSpec {
    /// Checkpoints every `every_secs` virtual seconds, no perturbation.
    pub fn every(every_secs: f64) -> CheckpointSpec {
        CheckpointSpec {
            every_secs,
            perturb_at_secs: None,
        }
    }
}

/// One captured checkpoint: a sealed [`snap`] container holding the
/// store, kernel, and driver state at a virtual-time boundary.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// Zero-based index within the run.
    pub index: u32,
    /// Virtual time at which the checkpoint was captured.
    pub at: SimTime,
    /// The sealed container ([`snap::seal`]); feed to
    /// [`resume_benchmark`] or write to disk verbatim.
    pub bytes: Vec<u8>,
}

impl Checkpoint {
    /// FNV-1a fingerprint of the container *body* (store + kernel +
    /// driver state). Headers are excluded so a clean and a perturbed
    /// run — whose config fingerprints necessarily differ — still hash
    /// equal while their states agree; bisection compares these.
    pub fn state_hash(&self) -> u64 {
        let (_, body) = snap::open(&self.bytes).expect("own checkpoint is well-formed");
        fnv1a64(body)
    }

    /// The sealed header (scenario, fingerprint, index, virtual time).
    pub fn header(&self) -> SnapshotHeader {
        snap::open(&self.bytes)
            .expect("own checkpoint is well-formed")
            .0
    }
}

/// Fingerprint binding a snapshot to the exact run configuration that
/// produced it. `Debug` formatting of the config is deterministic, and
/// every divergence-relevant knob (workload, seed, faults, policies)
/// participates in it.
pub fn config_fingerprint(scenario: &str, config: &RunConfig) -> u64 {
    fnv1a64(format!("{scenario}|{config:?}").as_bytes())
}

/// Locates the first checkpoint window where two runs diverge, by
/// binary search over the monotone predicate "prefixes agree". Returns
/// `None` when the runs agree on every common checkpoint; otherwise the
/// index `k` of the first divergent checkpoint — the divergence lies in
/// the virtual-time window `(checkpoint k-1, checkpoint k]`.
pub fn bisect_divergence(a: &[Checkpoint], b: &[Checkpoint]) -> Option<u32> {
    let common = a.len().min(b.len());
    if common == 0 {
        return None;
    }
    // Determinism makes divergence sticky: once states differ they never
    // re-converge, so "a[k] == b[k]" is monotone in k and bisectable.
    if a[common - 1].state_hash() == b[common - 1].state_hash() {
        return None;
    }
    let (mut lo, mut hi) = (0usize, common - 1); // hi: known divergent
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if a[mid].state_hash() == b[mid].state_hash() {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    Some(a[lo].index)
}

/// Client-visible accounting threaded through both driver loops, kept
/// for the chaos oracles: which inserts the client saw acknowledged and
/// how logical operations resolved. Collection is unconditional — it
/// costs a few counters per op, never influences scheduling, and is not
/// part of [`RunConfig`], so config fingerprints and default-path
/// results are untouched by its existence.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunLedger {
    /// Keys of inserts acknowledged to the client (plan succeeded, op
    /// accepted, not shed). The durability oracle reads each back after
    /// the run: an acked key a recovered store cannot serve is lost data.
    pub acked_inserts: Vec<MetricKey>,
    /// Logical operations started (one per closed-loop issue; retries
    /// and hedges re-send the same logical op and do not count).
    pub logical: u64,
    /// Logical operations resolved exactly once (success, error, or
    /// rejection — warm-up included). `logical - resolved` is the
    /// in-flight residue at the window end, bounded by the connection
    /// count.
    pub resolved: u64,
    /// Of the resolved, client-side rejections (store admission refusals
    /// and breaker fast-fails).
    pub rejected: u64,
}

impl Snap for RunLedger {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.acked_inserts);
        w.put_u64(self.logical);
        w.put_u64(self.resolved);
        w.put_u64(self.rejected);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(RunLedger {
            acked_inserts: r.get()?,
            logical: r.u64()?,
            resolved: r.u64()?,
            rejected: r.u64()?,
        })
    }
}

/// Result of one benchmark run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Latency and throughput statistics over the measurement window.
    pub stats: BenchStats,
    /// Operations issued in total (including warm-up and rejected).
    pub issued: u64,
    /// Per-node disk usage after the run, if the store persists to disk.
    pub disk_bytes_per_node: Option<u64>,
    /// Windowed telemetry over the measurement window, when
    /// [`RunConfig::telemetry_window_secs`] was set.
    pub telemetry: Option<Telemetry>,
    /// Checkpoints captured on the [`RunConfig::checkpoints`] schedule,
    /// in virtual-time order (empty when no schedule was set).
    pub checkpoints: Vec<Checkpoint>,
    /// Acked-write and conservation accounting for the chaos oracles.
    pub ledger: RunLedger,
}

impl RunResult {
    /// Overall throughput in operations per second.
    pub fn throughput(&self) -> f64 {
        self.stats.throughput()
    }

    /// Mean latency in milliseconds for `kind`.
    pub fn mean_latency_ms(&self, kind: OpKind) -> Option<f64> {
        self.stats.mean_latency_ms(kind)
    }
}

struct ClientSlot {
    kind: OpKind,
    ok: bool,
    /// The read missed — with fault injection this means the store lost
    /// the record (e.g. a crashed cache node), counted as an error.
    missing: bool,
    /// Next scheduled issue time under throttling.
    next_issue: SimTime,
    /// Key of the insert in flight, held until the acknowledgement so
    /// the ledger records exactly the keys the client saw acked.
    pending_insert: Option<MetricKey>,
}

impl Snap for ClientSlot {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.kind);
        w.put(&self.ok);
        w.put(&self.missing);
        w.put(&self.next_issue);
        w.put(&self.pending_insert);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(ClientSlot {
            kind: r.get()?,
            ok: r.get()?,
            missing: r.get()?,
            next_issue: r.get()?,
            pending_insert: r.get()?,
        })
    }
}

/// Resource class (`cpu` / `disk` / `net`) of a *server* resource name;
/// `None` for client machines (workload generators, not the system under
/// test) and unclassified resources. Server-side software serialisation
/// stages — Redis's event loop, MongoDB's write lock, HDFS xceiver
/// pools, VoltDB sites and initiator — count as `cpu`: they are where a
/// request burns compute, distinct from the physical disk and NIC
/// acquires those stores also make.
pub fn server_resource_class(name: &str) -> Option<&'static str> {
    if name.starts_with("client") {
        return None;
    }
    if name.ends_with(".cpu")
        || name.ends_with(".eventloop")
        || name.ends_with(".writelock")
        || name.ends_with(".xceiver")
        || name.starts_with("voltdb.")
    {
        Some("cpu")
    } else if name.ends_with(".disk") {
        Some("disk")
    } else if name.ends_with(".nic") {
        Some("net")
    } else {
        None
    }
}

/// Samples per-class server-resource state at telemetry window
/// boundaries. A boundary is detected at the first completion at or past
/// it, so samples lag the nominal boundary by at most one op latency —
/// deterministic, and negligible against one-second windows.
struct TelemetrySampler {
    telemetry: Telemetry,
    window: SimDuration,
    warmup_end: SimTime,
    /// Next unsampled boundary index; boundary `k` closes window `k - 1`.
    boundary: u64,
    /// Service-busy nanoseconds per resource at the previous boundary.
    prev_busy: Vec<u128>,
}

impl TelemetrySampler {
    fn new(engine: &Engine, window_secs: f64, warmup_end: SimTime) -> TelemetrySampler {
        let window = SimDuration::from_secs_f64(window_secs);
        TelemetrySampler {
            telemetry: Telemetry::new(window.as_nanos()),
            window,
            warmup_end,
            boundary: 0,
            prev_busy: vec![0; engine.resource_count()],
        }
    }

    fn boundary_time(&self, k: u64) -> SimTime {
        self.warmup_end + SimDuration::from_nanos(self.window.as_nanos() * k)
    }

    /// Samples every boundary at or before `now`.
    fn advance_to(&mut self, engine: &Engine, now: SimTime) {
        while self.boundary_time(self.boundary) <= now {
            let k = self.boundary;
            self.boundary += 1;
            if k == 0 {
                // Boundary 0 is the measurement start: baseline only.
                self.snapshot_busy(engine);
                continue;
            }
            self.sample_window(engine, (k - 1) as usize);
        }
    }

    fn snapshot_busy(&mut self, engine: &Engine) {
        for (i, prev) in self.prev_busy.iter_mut().enumerate() {
            *prev = engine.service_ns(ResourceId(i as u32));
        }
    }

    fn snap_state(&self, w: &mut SnapWriter) {
        w.put(&self.telemetry);
        w.put(&self.window);
        w.put(&self.warmup_end);
        w.put_u64(self.boundary);
        w.put(&self.prev_busy);
    }

    fn restore_state(r: &mut SnapReader) -> Result<TelemetrySampler, SnapError> {
        Ok(TelemetrySampler {
            telemetry: r.get()?,
            window: r.get()?,
            warmup_end: r.get()?,
            boundary: r.u64()?,
            prev_busy: r.get()?,
        })
    }

    fn sample_window(&mut self, engine: &Engine, index: usize) {
        let mut utils: BTreeMap<&'static str, Vec<f64>> = BTreeMap::new();
        let mut queues: BTreeMap<&'static str, f64> = BTreeMap::new();
        let window_ns = self.window.as_nanos() as f64;
        for i in 0..engine.resource_count() {
            let id = ResourceId(i as u32);
            let Some(class) = server_resource_class(engine.resource_name(id)) else {
                continue;
            };
            let delta = engine.service_ns(id) - self.prev_busy[i];
            let util = delta as f64 / (window_ns * f64::from(engine.resource_capacity(id)));
            utils.entry(class).or_default().push(util);
            *queues.entry(class).or_default() += engine.queue_len(id) as f64;
        }
        self.snapshot_busy(engine);
        for (class, class_utils) in &utils {
            let sample = ResourceSample {
                utilization: pairwise_sum(class_utils) / class_utils.len() as f64,
                queue_depth: queues[class],
            };
            self.telemetry.sample_resource(index, class, sample);
        }
    }
}

/// Runs the load phase then the transaction phase of one benchmark.
///
/// The store must have been constructed against `engine` (its resources
/// live there). Returns the measured statistics.
pub fn run_benchmark(
    engine: &mut Engine,
    store: &mut dyn DistributedStore,
    config: &RunConfig,
) -> RunResult {
    run_benchmark_masked(engine, store, config, None)
}

/// [`run_benchmark`] with a fault-event mask: `mask[i] == false`
/// suppresses the *dispatch* of `config.faults.events()[i]` (its
/// sentinel still fires, so the kernel event stream is unchanged).
///
/// This is the chaos shrinker's probe primitive: a probe tests a subset
/// of one fixed schedule without changing the `RunConfig` — and
/// therefore without changing the config fingerprint — so it can resume
/// from any checkpoint the full-schedule run captured strictly before
/// the first suppressed event. Two runs differing only in the mask are
/// byte-identical up to the first differing dispatch.
pub fn run_benchmark_masked(
    engine: &mut Engine,
    store: &mut dyn DistributedStore,
    config: &RunConfig,
    mask: Option<&[bool]>,
) -> RunResult {
    // ---- Load phase (untimed; the paper reinstalls and reloads per run).
    let total_records = config.records_per_node * u64::from(config.nodes);
    for seq in 0..total_records {
        store.load(&record_for_seq(seq));
    }
    store.finish_load();

    if config.resilience.is_some() {
        // The resilient driver wraps every logical op in the policy
        // engine; kept as a separate loop so the legacy path below stays
        // byte-identical when no policy is configured.
        return run_transactions_resilient(engine, store, config, total_records, mask);
    }
    run_transactions_legacy(engine, store, config, total_records, mask)
}

/// Resumes the transaction phase from a sealed checkpoint, continuing
/// to the end of the measurement window. The engine and store must be
/// freshly constructed against the *same* `config` that produced the
/// snapshot (the fingerprint in the header enforces this); the load
/// phase reruns here, then the snapshot overwrites every piece of
/// mutable state, so the continuation is byte-identical to the portion
/// of the from-scratch run after the checkpoint.
pub fn resume_benchmark(
    engine: &mut Engine,
    store: &mut dyn DistributedStore,
    config: &RunConfig,
    snapshot: &[u8],
) -> Result<RunResult, SnapError> {
    resume_benchmark_masked(engine, store, config, snapshot, None)
}

/// [`resume_benchmark`] with a fault-event mask (see
/// [`run_benchmark_masked`]). Sound only when every event the mask
/// suppresses dispatches *after* the snapshot's virtual time; the chaos
/// shrinker picks its checkpoints to guarantee this.
pub fn resume_benchmark_masked(
    engine: &mut Engine,
    store: &mut dyn DistributedStore,
    config: &RunConfig,
    snapshot: &[u8],
    mask: Option<&[bool]>,
) -> Result<RunResult, SnapError> {
    let (header, body) = snap::open(snapshot)?;
    if header.features != Engine::snap_features() {
        return Err(SnapError::FeatureMismatch {
            stored: header.features,
            active: Engine::snap_features(),
        });
    }
    let active = config_fingerprint(store.name(), config);
    if header.config_fingerprint != active {
        return Err(SnapError::ConfigMismatch {
            stored: header.config_fingerprint,
            active,
        });
    }

    // The restore contract: stores restore into a freshly loaded self.
    let total_records = config.records_per_node * u64::from(config.nodes);
    for seq in 0..total_records {
        store.load(&record_for_seq(seq));
    }
    store.finish_load();

    let mut r = SnapReader::new(body);
    store.restore_state(&mut r, engine)?;
    engine.restore_state(&mut r)?;
    let mode = r.u8()?;
    let mut checkpoints = Vec::new();
    match (mode, config.resilience.is_some()) {
        (MODE_LEGACY, false) => {
            let mut d = LegacyDriver::restore_state(config, total_records, &mut r)?;
            r.finish()?;
            drive_legacy(engine, store, config, &mut d, &mut checkpoints, mask);
            Ok(finalize_legacy(engine, store, d, checkpoints))
        }
        (MODE_RESILIENT, true) => {
            let policy = config.resilience.clone().expect("checked above");
            let mut d =
                ResilientDriver::restore_state(config, policy, total_records, store, &mut r)?;
            r.finish()?;
            drive_resilient(engine, store, config, &mut d, &mut checkpoints, mask);
            Ok(finalize_resilient(engine, store, d, checkpoints))
        }
        (tag, _) => Err(SnapError::BadTag {
            what: "driver mode",
            tag: u64::from(tag),
        }),
    }
}

/// Driver-mode discriminant in the snapshot body (after kernel state).
const MODE_LEGACY: u8 = 0;
/// See [`MODE_LEGACY`].
const MODE_RESILIENT: u8 = 1;

/// Loop state of the legacy (policy-free) driver — everything the event
/// loop mutates, extracted so a checkpoint can serialize it and a
/// resumed run can re-enter [`drive_legacy`] mid-window.
struct LegacyDriver {
    generator: WorkloadGenerator,
    slots: Vec<ClientSlot>,
    stats: BenchStats,
    sampler: Option<TelemetrySampler>,
    issued: u64,
    warmup_end: SimTime,
    measure_end: SimTime,
    event_at: Option<SimTime>,
    /// Index of the next checkpoint to capture.
    next_checkpoint: u32,
    ledger: RunLedger,
}

impl LegacyDriver {
    fn snap_state(&self, w: &mut SnapWriter) {
        self.generator.snap_state(w);
        w.put(&self.slots);
        w.put(&self.stats);
        match &self.sampler {
            Some(sampler) => {
                w.put_u8(1);
                sampler.snap_state(w);
            }
            None => w.put_u8(0),
        }
        w.put_u64(self.issued);
        w.put(&self.warmup_end);
        w.put(&self.measure_end);
        w.put(&self.event_at);
        w.put_u32(self.next_checkpoint);
        w.put(&self.ledger);
    }

    fn restore_state(
        config: &RunConfig,
        total_records: u64,
        r: &mut SnapReader,
    ) -> Result<LegacyDriver, SnapError> {
        let mut generator =
            WorkloadGenerator::new(config.workload.clone(), total_records, config.seed);
        generator.restore_state(r)?;
        Ok(LegacyDriver {
            generator,
            slots: r.get()?,
            stats: r.get()?,
            sampler: match r.u8()? {
                0 => None,
                1 => Some(TelemetrySampler::restore_state(r)?),
                tag => {
                    return Err(SnapError::BadTag {
                        what: "sampler option",
                        tag: u64::from(tag),
                    })
                }
            },
            issued: r.u64()?,
            warmup_end: r.get()?,
            measure_end: r.get()?,
            event_at: r.get()?,
            next_checkpoint: r.u32()?,
            ledger: r.get()?,
        })
    }

    /// Virtual time of the next checkpoint boundary.
    fn checkpoint_due(&self, every: SimDuration) -> SimTime {
        self.warmup_end
            + SimDuration::from_nanos(every.as_nanos() * (u64::from(self.next_checkpoint) + 1))
    }
}

/// Fresh transaction phase of the legacy driver: arm faults, prime the
/// connections, then enter the shared event loop.
fn run_transactions_legacy(
    engine: &mut Engine,
    store: &mut dyn DistributedStore,
    config: &RunConfig,
    total_records: u64,
    mask: Option<&[bool]>,
) -> RunResult {
    let mut generator = WorkloadGenerator::new(config.workload.clone(), total_records, config.seed);
    let connections = match store.connection_cap() {
        Some(cap) => config.client.connections.min(cap),
        None => config.client.connections,
    };
    assert!(connections > 0, "no client connections");
    let warmup_end = engine.now() + SimDuration::from_secs_f64(config.client.warmup_secs);
    let measure_end = warmup_end + SimDuration::from_secs_f64(config.client.measure_secs);
    let issue_interval = config
        .client
        .issue_interval_secs()
        .map(SimDuration::from_secs_f64);

    let mut slots: Vec<ClientSlot> = (0..connections)
        .map(|_| ClientSlot {
            kind: OpKind::Read,
            ok: true,
            missing: false,
            next_issue: engine.now(),
            pending_insert: None,
        })
        .collect();
    let sampler = config
        .telemetry_window_secs
        .map(|secs| TelemetrySampler::new(engine, secs, warmup_end));
    let mut issued: u64 = 0;
    let mut ledger = RunLedger::default();
    let start = engine.now();

    // Arm the fault schedule: one zero-cost sentinel plan per event, so
    // transitions fire at exact simulated times inside the event loop.
    for (index, event) in config.faults.events().iter().enumerate() {
        let at = warmup_end + SimDuration::from_nanos(event.at.as_nanos());
        if at < measure_end {
            engine.submit_at(
                at.max(engine.now()),
                Plan::empty(),
                fault_token(index as u64),
            );
        }
    }

    // Prime every connection. Under throttling, stagger the first issues
    // across one interval so the target rate is smooth.
    for client in 0..connections {
        let at = match issue_interval {
            Some(interval) => {
                start
                    + SimDuration::from_nanos(
                        interval.as_nanos() * u64::from(client) / u64::from(connections),
                    )
            }
            None => start,
        };
        slots[client as usize].next_issue = at;
        issue_op(
            engine,
            store,
            &mut generator,
            &mut slots,
            client,
            at,
            config.op_deadline,
            &mut issued,
            &mut ledger,
        );
    }

    let event_at = config
        .event_at_secs
        .map(|secs| warmup_end + SimDuration::from_secs_f64(secs));

    let mut d = LegacyDriver {
        generator,
        slots,
        stats: BenchStats::new(),
        sampler,
        issued,
        warmup_end,
        measure_end,
        event_at,
        next_checkpoint: 0,
        ledger,
    };
    let mut checkpoints = Vec::new();
    drive_legacy(engine, store, config, &mut d, &mut checkpoints, mask);
    finalize_legacy(engine, store, d, checkpoints)
}

/// Pops the next completion from the driver-local batch, refilling it
/// through the kernel's batched delivery when it runs dry. Delivery
/// order is identical to calling [`Engine::next_completion`] per op —
/// the kernel buffers whole batches before handing anything out either
/// way — but the event loop pays one kernel call per batch instead of
/// one per completion.
fn next_batched(engine: &mut Engine, batch: &mut VecDeque<Completion>) -> Option<Completion> {
    if let Some(completion) = batch.pop_front() {
        return Some(completion);
    }
    if engine.drain_completions(batch) {
        batch.pop_front()
    } else {
        None
    }
}

/// The legacy event loop: consume completions, record, reissue, capture
/// checkpoints, stop at the window end. Both a fresh run and a resumed
/// one enter here; all mutable state lives in the driver, the kernel,
/// or the store — each of which snapshots — so the loop itself is
/// oblivious to which entry path it came from.
fn drive_legacy(
    engine: &mut Engine,
    store: &mut dyn DistributedStore,
    config: &RunConfig,
    d: &mut LegacyDriver,
    checkpoints: &mut Vec<Checkpoint>,
    mask: Option<&[bool]>,
) {
    let issue_interval = config
        .client
        .issue_interval_secs()
        .map(SimDuration::from_secs_f64);
    let every = config
        .checkpoints
        .as_ref()
        .map(|spec| SimDuration::from_secs_f64(spec.every_secs));
    // The perturbation is derived, never serialized: a resumed run
    // recomputes whether it still lies ahead, so pre-perturbation
    // checkpoints of a clean and a perturbed run stay byte-identical.
    let mut perturb_at = config
        .checkpoints
        .as_ref()
        .and_then(|spec| spec.perturb_at_secs)
        .map(|secs| d.warmup_end + SimDuration::from_secs_f64(secs))
        .filter(|&at| engine.now() < at);

    // Completions arrive in batches — everything the kernel buffered in
    // one pass — cutting a kernel round-trip per same-timestamp
    // completion; the per-completion body is unchanged.
    let mut batch: VecDeque<Completion> = VecDeque::new();
    while let Some(completion) = next_batched(engine, &mut batch) {
        let now = completion.finished;
        if let Some(sampler) = d.sampler.as_mut() {
            sampler.advance_to(engine, now.min(d.measure_end));
        }
        if now > d.measure_end {
            break;
        }
        if let Some(at) = d.event_at {
            if now >= at {
                d.event_at = None;
                store.on_timed_event(engine);
            }
        }
        if let Some(at) = perturb_at {
            if now >= at {
                perturb_at = None;
                // Injected divergence: burn one draw, shifting every
                // subsequent op in the stream.
                let _ = d.generator.next_op();
            }
        }
        let (is_fault, fault_index) = split_fault_token(completion.token);
        if is_fault {
            if event_enabled(mask, fault_index as usize) {
                let event = config.faults.events()[fault_index as usize];
                store.on_fault(&event, engine);
            }
            continue;
        }
        let (is_background, id) = split_token(completion.token);
        if is_background {
            store.on_background(id, engine);
            continue;
        }
        let client = id as u32;
        let slot = &d.slots[client as usize];
        let failed = !completion.outcome.is_ok();
        if now > d.warmup_end {
            let offset_ns = now.since(d.warmup_end).as_nanos();
            if failed || slot.missing {
                // Kernel-level failure (node down, timeout) or lost data.
                d.stats.record_error(slot.kind, offset_ns);
                if let Some(sampler) = d.sampler.as_mut() {
                    sampler.telemetry.record_error(offset_ns);
                }
            } else {
                if slot.ok {
                    d.stats.record(slot.kind, completion.latency().as_nanos());
                    if let Some(sampler) = d.sampler.as_mut() {
                        sampler
                            .telemetry
                            .record(offset_ns, completion.latency().as_nanos());
                    }
                } else {
                    d.stats.record_rejection(slot.kind);
                    if let Some(sampler) = d.sampler.as_mut() {
                        sampler.telemetry.record_rejection(offset_ns);
                    }
                }
                d.stats.record_timeline(offset_ns);
            }
        }
        {
            // Every non-fault, non-background completion resolves its
            // connection's op exactly once — warm-up included, which is
            // why this sits outside the measurement gate above.
            let slot = &mut d.slots[client as usize];
            d.ledger.resolved += 1;
            if !failed && !slot.missing && !slot.ok {
                d.ledger.rejected += 1;
            }
            if slot.kind == OpKind::Insert && slot.ok && !failed {
                d.generator.ack_insert();
                if let Some(key) = slot.pending_insert.take() {
                    d.ledger.acked_inserts.push(key);
                }
            }
        }
        // Schedule the next op for this connection.
        let at = match issue_interval {
            Some(interval) => {
                let scheduled = d.slots[client as usize].next_issue + interval;
                d.slots[client as usize].next_issue =
                    if scheduled >= now { scheduled } else { now };
                d.slots[client as usize].next_issue
            }
            None => now,
        };
        if at < d.measure_end {
            issue_op(
                engine,
                store,
                &mut d.generator,
                &mut d.slots,
                client,
                at,
                config.op_deadline,
                &mut d.issued,
                &mut d.ledger,
            );
        }
        // Capture every checkpoint boundary crossed by this completion.
        // The bottom of the iteration is a consistent cut: the completion
        // is fully absorbed and the follow-up op submitted.
        if let Some(every) = every {
            if d.checkpoint_due(every) <= now {
                // Batching invariant: hand the undelivered remainder back
                // to the kernel before serializing, so checkpoint bytes
                // match one-at-a-time delivery exactly; the next refill
                // re-delivers it without stepping any events.
                engine.requeue_completions(&mut batch);
            }
            while d.checkpoint_due(every) <= now {
                let index = d.next_checkpoint;
                d.next_checkpoint += 1;
                capture_checkpoint(
                    engine,
                    store,
                    config,
                    MODE_LEGACY,
                    index,
                    checkpoints,
                    |w| d.snap_state(w),
                );
            }
        }
    }
}

fn finalize_legacy(
    engine: &mut Engine,
    store: &mut dyn DistributedStore,
    mut d: LegacyDriver,
    checkpoints: Vec<Checkpoint>,
) -> RunResult {
    d.stats
        .set_window_ns(d.measure_end.since(d.warmup_end).as_nanos());
    // Flush the final boundary (the loop stops at the first completion
    // past the window, which may itself lie beyond it).
    if let Some(sampler) = d.sampler.as_mut() {
        sampler.advance_to(engine, d.measure_end);
    }
    RunResult {
        stats: d.stats,
        issued: d.issued,
        disk_bytes_per_node: store.disk_bytes_per_node(),
        telemetry: d.sampler.map(|s| s.telemetry),
        checkpoints,
        ledger: d.ledger,
    }
}

/// True when the mask (if any) leaves fault event `index` enabled.
fn event_enabled(mask: Option<&[bool]>, index: usize) -> bool {
    match mask {
        Some(m) => m.get(index).copied().unwrap_or(true),
        None => true,
    }
}

/// Seals one checkpoint: store state, kernel state, the driver-mode
/// byte, then the driver state written by `snap_driver`. The caller
/// advances the driver's checkpoint counter *before* serializing, so
/// the stored counter already points past this checkpoint — exactly
/// what a resumed run needs to continue the numbering.
#[allow(clippy::too_many_arguments)]
fn capture_checkpoint(
    engine: &Engine,
    store: &dyn DistributedStore,
    config: &RunConfig,
    mode: u8,
    index: u32,
    checkpoints: &mut Vec<Checkpoint>,
    snap_driver: impl FnOnce(&mut SnapWriter),
) {
    let mut w = SnapWriter::new();
    store.snap_state(&mut w);
    engine.snap_state(&mut w);
    w.put_u8(mode);
    snap_driver(&mut w);
    let header = SnapshotHeader {
        scenario: store.name().to_string(),
        config_fingerprint: config_fingerprint(store.name(), config),
        features: Engine::snap_features(),
        checkpoint_index: index,
        virtual_time_ns: engine.now().0,
    };
    checkpoints.push(Checkpoint {
        index,
        at: engine.now(),
        bytes: snap::seal(&header, w.bytes()),
    });
}

#[allow(clippy::too_many_arguments)]
fn issue_op(
    engine: &mut Engine,
    store: &mut dyn DistributedStore,
    generator: &mut WorkloadGenerator,
    slots: &mut [ClientSlot],
    client: u32,
    at: SimTime,
    deadline: Option<SimDuration>,
    issued: &mut u64,
    ledger: &mut RunLedger,
) {
    let op = generator.next_op();
    let (outcome, plan) = store.plan_op(client, &op, engine);
    *issued += 1;
    ledger.logical += 1;
    slots[client as usize].kind = op.kind();
    slots[client as usize].ok = !matches!(outcome, OpOutcome::Rejected(_));
    slots[client as usize].missing = matches!(outcome, OpOutcome::Missing);
    slots[client as usize].pending_insert = match &op {
        Operation::Insert { record } => Some(record.key),
        Operation::Read { .. } | Operation::Update { .. } | Operation::Scan { .. } => None,
    };
    let start = at.max(engine.now());
    let token = Token(u64::from(client));
    match deadline {
        Some(deadline) => engine.submit_at_with_deadline(start, plan, token, deadline),
        None => engine.submit_at(start, plan, token),
    };
}

// ---------------------------------------------------------------------------
// Resilient driver: the same closed loop, with every logical op wrapped in
// the retry / hedging / circuit-breaking / admission policies of
// [`crate::resilience`]. Lives beside the legacy loop (rather than inside
// it) so a `RunConfig` without a policy keeps today's byte-identical path.

/// Client CPU burned by a breaker fast-fail (error construction on the
/// client; the shed op never touches the target node).
const SHED_COST: SimDuration = SimDuration::from_micros(5);

/// Per-connection state when a [`ResiliencePolicy`] is active.
struct ResilientSlot {
    /// The logical op in flight (retries and hedges re-send it).
    op: Option<Operation>,
    ok: bool,
    missing: bool,
    next_issue: SimTime,
    /// Attempt epoch, advanced on every attempt submission; completions
    /// carrying an older epoch are stale (cancelled losers, late
    /// triggers) and are dropped unrecorded.
    epoch: u64,
    /// Start of the logical op's first attempt — the base for end-to-end
    /// latency, so retries and backoff count against the op.
    logical_start: SimTime,
    retries_used: u32,
    /// Jitter fraction drawn once per logical op, keeping each op's
    /// backoff schedule monotone.
    jitter: f64,
    /// Breaker target of the current attempt.
    target: Option<usize>,
    was_probe: bool,
    /// The current attempt was shed by a breaker (client fast-fail).
    shed: bool,
    hedge_used: bool,
    primary: Option<PlanHandle>,
    hedge: Option<PlanHandle>,
    trigger: Option<PlanHandle>,
}

impl ResilientSlot {
    fn kind(&self) -> OpKind {
        self.op.as_ref().expect("logical op in flight").kind()
    }
}

impl Snap for ResilientSlot {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.op);
        w.put(&self.ok);
        w.put(&self.missing);
        w.put(&self.next_issue);
        w.put_u64(self.epoch);
        w.put(&self.logical_start);
        w.put_u32(self.retries_used);
        w.put_f64(self.jitter);
        w.put(&self.target);
        w.put(&self.was_probe);
        w.put(&self.shed);
        w.put(&self.hedge_used);
        w.put(&self.primary);
        w.put(&self.hedge);
        w.put(&self.trigger);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(ResilientSlot {
            op: r.get()?,
            ok: r.get()?,
            missing: r.get()?,
            next_issue: r.get()?,
            epoch: r.u64()?,
            logical_start: r.get()?,
            retries_used: r.u32()?,
            jitter: r.f64()?,
            target: r.get()?,
            was_probe: r.get()?,
            shed: r.get()?,
            hedge_used: r.get()?,
            primary: r.get()?,
            hedge: r.get()?,
            trigger: r.get()?,
        })
    }
}

/// Mutable policy-engine state shared by all connections.
struct PolicyState {
    /// Config, re-supplied at construction (see `snap_state` docs).
    policy: ResiliencePolicy, // audit:allow(snap-drift)
    rng: JitterRng,
    tracker: HedgeTracker,
    breakers: Vec<Breaker>,
    budget: Option<AdmissionBudget>,
    counters: ResilienceCounters,
    #[cfg(feature = "audit")]
    auditor: crate::audit::RetryAuditor,
}

impl PolicyState {
    fn new(policy: ResiliencePolicy, seed: u64, targets: usize) -> PolicyState {
        PolicyState {
            rng: JitterRng::new(seed ^ 0x7E51_11E9_CE00_0001),
            tracker: HedgeTracker::default(),
            breakers: (0..targets).map(|_| Breaker::default()).collect(),
            budget: policy.admission.as_ref().map(AdmissionBudget::new),
            counters: ResilienceCounters::default(),
            #[cfg(feature = "audit")]
            auditor: crate::audit::RetryAuditor::default(),
            policy,
        }
    }

    fn note_transition(
        &mut self,
        transition: Option<(
            crate::resilience::BreakerState,
            crate::resilience::BreakerState,
        )>,
    ) {
        if let Some((_from, _to)) = transition {
            self.counters.breaker_transitions += 1;
            #[cfg(feature = "audit")]
            self.auditor.on_transition(_from, _to);
        }
    }

    /// Spends one extra-attempt credit (retry or hedge); always granted
    /// when no admission policy is configured.
    fn try_extra(&mut self) -> bool {
        match self.budget.as_mut() {
            Some(budget) => budget.try_spend(),
            None => true,
        }
    }

    /// The policy itself is config, re-supplied at construction; only
    /// the mutable engine state serializes. The breaker vector carries
    /// its own length, so topology growth mid-run survives a round trip.
    fn snap_state(&self, w: &mut SnapWriter) {
        w.put_u64(self.rng.state());
        w.put(&self.tracker);
        w.put(&self.breakers);
        w.put(&self.budget);
        w.put(&self.counters);
        // The sealed container's feature byte (checked in `open`) rejects
        // cross-feature streams before this codec runs.
        #[cfg(feature = "audit")] // audit:allow(feature-symmetry)
        w.put(&self.auditor);
    }

    fn restore_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.rng = JitterRng::from_state(r.u64()?);
        self.tracker = r.get()?;
        self.breakers = r.get()?;
        self.budget = r.get()?;
        self.counters = r.get()?;
        // Container feature byte guards this read; see `snap_state`.
        #[cfg(feature = "audit")] // audit:allow(feature-symmetry)
        {
            self.auditor = r.get()?;
        }
        Ok(())
    }
}

/// Loop state of the resilient driver — [`LegacyDriver`] plus the
/// policy engine, extracted for the same checkpoint/resume reasons.
struct ResilientDriver {
    generator: WorkloadGenerator,
    slots: Vec<ResilientSlot>,
    stats: BenchStats,
    sampler: Option<TelemetrySampler>,
    issued: u64,
    warmup_end: SimTime,
    measure_end: SimTime,
    event_at: Option<SimTime>,
    next_checkpoint: u32,
    ledger: RunLedger,
    ps: PolicyState,
}

impl ResilientDriver {
    fn snap_state(&self, w: &mut SnapWriter) {
        self.generator.snap_state(w);
        w.put(&self.slots);
        w.put(&self.stats);
        match &self.sampler {
            Some(sampler) => {
                w.put_u8(1);
                sampler.snap_state(w);
            }
            None => w.put_u8(0),
        }
        w.put_u64(self.issued);
        w.put(&self.warmup_end);
        w.put(&self.measure_end);
        w.put(&self.event_at);
        w.put_u32(self.next_checkpoint);
        w.put(&self.ledger);
        self.ps.snap_state(w);
    }

    fn restore_state(
        config: &RunConfig,
        policy: ResiliencePolicy,
        total_records: u64,
        store: &dyn DistributedStore,
        r: &mut SnapReader,
    ) -> Result<ResilientDriver, SnapError> {
        let mut generator =
            WorkloadGenerator::new(config.workload.clone(), total_records, config.seed);
        generator.restore_state(r)?;
        let mut d = ResilientDriver {
            generator,
            slots: r.get()?,
            stats: r.get()?,
            sampler: match r.u8()? {
                0 => None,
                1 => Some(TelemetrySampler::restore_state(r)?),
                tag => {
                    return Err(SnapError::BadTag {
                        what: "sampler option",
                        tag: u64::from(tag),
                    })
                }
            },
            issued: r.u64()?,
            warmup_end: r.get()?,
            measure_end: r.get()?,
            event_at: r.get()?,
            next_checkpoint: r.u32()?,
            ledger: r.get()?,
            ps: PolicyState::new(policy, config.seed, store.ctx().servers.len()),
        };
        d.ps.restore_state(r)?;
        Ok(d)
    }

    fn checkpoint_due(&self, every: SimDuration) -> SimTime {
        self.warmup_end
            + SimDuration::from_nanos(every.as_nanos() * (u64::from(self.next_checkpoint) + 1))
    }
}

fn run_transactions_resilient(
    engine: &mut Engine,
    store: &mut dyn DistributedStore,
    config: &RunConfig,
    total_records: u64,
    mask: Option<&[bool]>,
) -> RunResult {
    let policy = config
        .resilience
        .clone()
        .expect("resilient driver requires a policy");
    let mut generator = WorkloadGenerator::new(config.workload.clone(), total_records, config.seed);
    let connections = match store.connection_cap() {
        Some(cap) => config.client.connections.min(cap),
        None => config.client.connections,
    };
    assert!(connections > 0, "no client connections");
    let warmup_end = engine.now() + SimDuration::from_secs_f64(config.client.warmup_secs);
    let measure_end = warmup_end + SimDuration::from_secs_f64(config.client.measure_secs);
    let issue_interval = config
        .client
        .issue_interval_secs()
        .map(SimDuration::from_secs_f64);

    let mut slots: Vec<ResilientSlot> = (0..connections)
        .map(|_| ResilientSlot {
            op: None,
            ok: true,
            missing: false,
            next_issue: engine.now(),
            epoch: 0,
            logical_start: engine.now(),
            retries_used: 0,
            jitter: 0.0,
            target: None,
            was_probe: false,
            shed: false,
            hedge_used: false,
            primary: None,
            hedge: None,
            trigger: None,
        })
        .collect();
    let sampler = config
        .telemetry_window_secs
        .map(|secs| TelemetrySampler::new(engine, secs, warmup_end));
    let mut issued: u64 = 0;
    let mut ledger = RunLedger::default();
    let start = engine.now();
    let mut ps = PolicyState::new(policy, config.seed, store.ctx().servers.len());

    for (index, event) in config.faults.events().iter().enumerate() {
        let at = warmup_end + SimDuration::from_nanos(event.at.as_nanos());
        if at < measure_end {
            engine.submit_at(
                at.max(engine.now()),
                Plan::empty(),
                fault_token(index as u64),
            );
        }
    }

    for client in 0..connections {
        let at = match issue_interval {
            Some(interval) => {
                start
                    + SimDuration::from_nanos(
                        interval.as_nanos() * u64::from(client) / u64::from(connections),
                    )
            }
            None => start,
        };
        slots[client as usize].next_issue = at;
        issue_logical_op(
            engine,
            store,
            &mut generator,
            &mut slots,
            &mut ps,
            client,
            at,
            config.op_deadline,
            &mut issued,
            &mut ledger,
        );
    }

    let event_at = config
        .event_at_secs
        .map(|secs| warmup_end + SimDuration::from_secs_f64(secs));

    let mut d = ResilientDriver {
        generator,
        slots,
        stats: BenchStats::new(),
        sampler,
        issued,
        warmup_end,
        measure_end,
        event_at,
        next_checkpoint: 0,
        ledger,
        ps,
    };
    let mut checkpoints = Vec::new();
    drive_resilient(engine, store, config, &mut d, &mut checkpoints, mask);
    finalize_resilient(engine, store, d, checkpoints)
}

fn drive_resilient(
    engine: &mut Engine,
    store: &mut dyn DistributedStore,
    config: &RunConfig,
    d: &mut ResilientDriver,
    checkpoints: &mut Vec<Checkpoint>,
    mask: Option<&[bool]>,
) {
    let issue_interval = config
        .client
        .issue_interval_secs()
        .map(SimDuration::from_secs_f64);
    let every = config
        .checkpoints
        .as_ref()
        .map(|spec| SimDuration::from_secs_f64(spec.every_secs));
    let mut perturb_at = config
        .checkpoints
        .as_ref()
        .and_then(|spec| spec.perturb_at_secs)
        .map(|secs| d.warmup_end + SimDuration::from_secs_f64(secs))
        .filter(|&at| engine.now() < at);

    let mut batch: VecDeque<Completion> = VecDeque::new();
    while let Some(completion) = next_batched(engine, &mut batch) {
        let now = completion.finished;
        if let Some(sampler) = d.sampler.as_mut() {
            sampler.advance_to(engine, now.min(d.measure_end));
        }
        if now > d.measure_end {
            break;
        }
        if let Some(at) = d.event_at {
            if now >= at {
                d.event_at = None;
                store.on_timed_event(engine);
            }
        }
        if let Some(at) = perturb_at {
            if now >= at {
                perturb_at = None;
                let _ = d.generator.next_op();
            }
        }
        let (is_fault, fault_index) = split_fault_token(completion.token);
        if is_fault {
            if event_enabled(mask, fault_index as usize) {
                let event = config.faults.events()[fault_index as usize];
                store.on_fault(&event, engine);
            }
            continue;
        }
        let (is_background, id) = split_token(completion.token);
        if is_background {
            store.on_background(id, engine);
            continue;
        }
        let (client, epoch, attempt_kind) = split_attempt_token(completion.token);
        if epoch != d.slots[client as usize].epoch || completion.outcome == Outcome::Cancelled {
            // A cancelled loser, a stale trigger, or a straggler from a
            // superseded attempt: never recorded, so a hedged op can
            // never double-count in the stats.
            continue;
        }
        if attempt_kind == AttemptKind::HedgeTrigger {
            launch_hedge(
                engine,
                store,
                &mut d.slots,
                &mut d.ps,
                client,
                epoch,
                config.op_deadline,
                &mut d.issued,
            );
            continue;
        }

        // ---- The current attempt resolved: settle the race first.
        let failed = !completion.outcome.is_ok();
        {
            let slot = &mut d.slots[client as usize];
            let (winner_was_hedge, loser) = match attempt_kind {
                AttemptKind::Hedge => (true, slot.primary.take()),
                // HedgeTrigger completions return early above, so only a
                // primary can reach here; keep the arm for exhaustiveness.
                AttemptKind::Primary | AttemptKind::HedgeTrigger => (false, slot.hedge.take()),
            };
            if let Some(handle) = loser {
                engine.cancel(handle);
            }
            if let Some(handle) = slot.trigger.take() {
                engine.cancel(handle);
            }
            slot.primary = None;
            slot.hedge = None;
            if winner_was_hedge && !failed {
                d.ps.counters.hedge_wins += 1;
            }
        }

        // Feed the breaker and the hedge-latency tracker (shed attempts
        // never touched the target, so they are invisible to both).
        let slot_shed = d.slots[client as usize].shed;
        if !slot_shed {
            if let (Some(bp), Some(target)) =
                (d.ps.policy.breaker.clone(), d.slots[client as usize].target)
            {
                let was_probe = d.slots[client as usize].was_probe;
                let transition = d.ps.breakers[target].on_outcome(now, !failed, was_probe, &bp);
                d.ps.note_transition(transition);
            }
            let slot = &d.slots[client as usize];
            if !failed && slot.ok && !slot.missing && slot.kind() == OpKind::Read {
                d.ps.tracker.record(completion.latency().as_nanos());
            }
        }

        // Retry kernel-level failures within budget and admission.
        if failed && !slot_shed {
            if let Some(rp) = d.ps.policy.retry.clone() {
                let kind = d.slots[client as usize].kind();
                let used = d.slots[client as usize].retries_used;
                if used < rp.budget(kind) {
                    let re_at = now + backoff_delay(&rp, used, d.slots[client as usize].jitter);
                    if re_at < d.measure_end {
                        if d.ps.try_extra() {
                            d.slots[client as usize].retries_used = used + 1;
                            d.ps.counters.retries += 1;
                            #[cfg(feature = "audit")]
                            d.ps.auditor.on_retry(used + 1, rp.budget(kind));
                            issue_attempt(
                                engine,
                                store,
                                &mut d.slots,
                                &mut d.ps,
                                client,
                                re_at,
                                config.op_deadline,
                                &mut d.issued,
                            );
                            continue;
                        }
                        // Admission control declined: the storm stops here.
                        d.ps.counters.shed += 1;
                    }
                }
            }
        }

        // ---- Final resolution of the logical op.
        if now > d.warmup_end {
            let offset_ns = now.since(d.warmup_end).as_nanos();
            let slot = &d.slots[client as usize];
            let kind = slot.kind();
            if slot.shed {
                // Breaker fast-fail: a client-side rejection.
                d.stats.record_rejection(kind);
                d.stats.record_timeline(offset_ns);
                if let Some(sampler) = d.sampler.as_mut() {
                    sampler.telemetry.record_rejection(offset_ns);
                }
            } else if failed || slot.missing {
                d.stats.record_error(kind, offset_ns);
                if let Some(sampler) = d.sampler.as_mut() {
                    sampler.telemetry.record_error(offset_ns);
                }
            } else if slot.ok {
                // End-to-end latency: backoff and retries count against
                // the op, exactly as a real client would experience.
                let latency = now.since(slot.logical_start).as_nanos();
                d.stats.record(kind, latency);
                if let Some(sampler) = d.sampler.as_mut() {
                    sampler.telemetry.record(offset_ns, latency);
                }
                d.stats.record_timeline(offset_ns);
            } else {
                d.stats.record_rejection(kind);
                d.stats.record_timeline(offset_ns);
                if let Some(sampler) = d.sampler.as_mut() {
                    sampler.telemetry.record_rejection(offset_ns);
                }
            }
        }
        {
            // The logical op is final here (retry continuations returned
            // above): resolve it in the ledger, warm-up included.
            let slot = &d.slots[client as usize];
            d.ledger.resolved += 1;
            if slot.shed || (!failed && !slot.missing && !slot.ok) {
                d.ledger.rejected += 1;
            }
            if slot.kind() == OpKind::Insert && slot.ok && !failed && !slot.shed {
                d.generator.ack_insert();
                if let Some(Operation::Insert { record }) = &slot.op {
                    d.ledger.acked_inserts.push(record.key);
                }
            }
        }
        // Schedule the next logical op for this connection.
        let at = match issue_interval {
            Some(interval) => {
                let scheduled = d.slots[client as usize].next_issue + interval;
                d.slots[client as usize].next_issue =
                    if scheduled >= now { scheduled } else { now };
                d.slots[client as usize].next_issue
            }
            None => now,
        };
        if at < d.measure_end {
            issue_logical_op(
                engine,
                store,
                &mut d.generator,
                &mut d.slots,
                &mut d.ps,
                client,
                at,
                config.op_deadline,
                &mut d.issued,
                &mut d.ledger,
            );
        }
        if let Some(every) = every {
            if d.checkpoint_due(every) <= now {
                // Same batching invariant as the legacy driver: restore
                // the kernel's undelivered completions before serializing.
                engine.requeue_completions(&mut batch);
            }
            while d.checkpoint_due(every) <= now {
                let index = d.next_checkpoint;
                d.next_checkpoint += 1;
                capture_checkpoint(
                    engine,
                    store,
                    config,
                    MODE_RESILIENT,
                    index,
                    checkpoints,
                    |w| d.snap_state(w),
                );
            }
        }
    }
}

fn finalize_resilient(
    engine: &mut Engine,
    store: &mut dyn DistributedStore,
    mut d: ResilientDriver,
    checkpoints: Vec<Checkpoint>,
) -> RunResult {
    d.stats
        .set_window_ns(d.measure_end.since(d.warmup_end).as_nanos());
    *d.stats.resilience_mut() = d.ps.counters;
    if let Some(sampler) = d.sampler.as_mut() {
        sampler.advance_to(engine, d.measure_end);
    }
    RunResult {
        stats: d.stats,
        issued: d.issued,
        disk_bytes_per_node: store.disk_bytes_per_node(),
        telemetry: d.sampler.map(|s| s.telemetry),
        checkpoints,
        ledger: d.ledger,
    }
}

/// Starts a fresh logical op on `client`: draws the op and its jitter,
/// credits admission control, and issues the first attempt.
#[allow(clippy::too_many_arguments)]
fn issue_logical_op(
    engine: &mut Engine,
    store: &mut dyn DistributedStore,
    generator: &mut WorkloadGenerator,
    slots: &mut [ResilientSlot],
    ps: &mut PolicyState,
    client: u32,
    at: SimTime,
    deadline: Option<SimDuration>,
    issued: &mut u64,
    ledger: &mut RunLedger,
) {
    let op = generator.next_op();
    ledger.logical += 1;
    let slot = &mut slots[client as usize];
    slot.op = Some(op);
    slot.retries_used = 0;
    slot.jitter = ps.rng.next_frac();
    slot.hedge_used = false;
    slot.logical_start = at.max(engine.now());
    if let Some(budget) = ps.budget.as_mut() {
        budget.on_primary();
    }
    issue_attempt(engine, store, slots, ps, client, at, deadline, issued);
}

/// Issues one attempt (primary or retry) of the client's logical op,
/// consulting the target's circuit breaker and arming the hedge trigger
/// for reads.
#[allow(clippy::too_many_arguments)]
fn issue_attempt(
    engine: &mut Engine,
    store: &mut dyn DistributedStore,
    slots: &mut [ResilientSlot],
    ps: &mut PolicyState,
    client: u32,
    at: SimTime,
    deadline: Option<SimDuration>,
    issued: &mut u64,
) {
    let op = slots[client as usize]
        .op
        .clone()
        .expect("logical op in flight");
    let start = at.max(engine.now());
    let epoch = slots[client as usize].epoch + 1;
    {
        let slot = &mut slots[client as usize];
        slot.epoch = epoch;
        slot.was_probe = false;
        slot.shed = false;
        slot.primary = None;
        slot.hedge = None;
        slot.trigger = None;
    }

    // Circuit breaker: consult the per-target state machine first.
    let target = store.plan_target(&op);
    slots[client as usize].target = target;
    if let (Some(bp), Some(t)) = (ps.policy.breaker.clone(), target) {
        let (decision, transition) = ps.breakers[t].admit(start, &bp);
        ps.note_transition(transition);
        match decision {
            BreakerDecision::Admit => {}
            BreakerDecision::Probe => slots[client as usize].was_probe = true,
            BreakerDecision::Shed => {
                ps.counters.shed += 1;
                let slot = &mut slots[client as usize];
                slot.shed = true;
                slot.ok = true;
                slot.missing = false;
                *issued += 1;
                let plan = client_only_plan(store.ctx(), client, SHED_COST);
                slots[client as usize].primary =
                    Some(engine.submit_at(start, plan, attempt_token(client, epoch)));
                return;
            }
        }
    }

    let (outcome, plan) = store.plan_op(client, &op, engine);
    *issued += 1;
    {
        let slot = &mut slots[client as usize];
        slot.ok = !matches!(outcome, OpOutcome::Rejected(_));
        slot.missing = matches!(outcome, OpOutcome::Missing);
    }
    let token = attempt_token(client, epoch);
    let handle = match deadline {
        Some(deadline) => engine.submit_at_with_deadline(start, plan, token, deadline),
        None => engine.submit_at(start, plan, token),
    };
    slots[client as usize].primary = Some(handle);

    // Arm the hedge trigger: a pure delay whose completion is the signal
    // to launch the speculative duplicate read.
    if let Some(hp) = ps.policy.hedge.clone() {
        if op.kind() == OpKind::Read && !slots[client as usize].hedge_used {
            let delay = ps.tracker.delay(&hp);
            let trigger = engine.submit_at(
                start,
                Plan(vec![Step::Delay(delay)]),
                hedge_trigger_token(client, epoch),
            );
            slots[client as usize].trigger = Some(trigger);
        }
    }
}

/// Fired by a hedge trigger's completion: launches the speculative
/// duplicate read if the primary is still in flight, admission control
/// grants the extra attempt, and the store has an alternative replica.
#[allow(clippy::too_many_arguments)]
fn launch_hedge(
    engine: &mut Engine,
    store: &mut dyn DistributedStore,
    slots: &mut [ResilientSlot],
    ps: &mut PolicyState,
    client: u32,
    epoch: u64,
    deadline: Option<SimDuration>,
    issued: &mut u64,
) {
    {
        let slot = &mut slots[client as usize];
        slot.trigger = None;
        if slot.primary.is_none() || slot.hedge.is_some() || slot.hedge_used || slot.shed {
            return;
        }
    }
    if !ps.try_extra() {
        return; // admission control declines the speculative attempt
    }
    let op = slots[client as usize]
        .op
        .clone()
        .expect("logical op in flight");
    let Some(plan) = store.hedge_read_plan(client, &op, engine) else {
        return; // no alternative replica to hedge to
    };
    ps.counters.hedges += 1;
    slots[client as usize].hedge_used = true;
    *issued += 1;
    let token = hedge_token(client, epoch);
    let handle = match deadline {
        Some(deadline) => engine.submit_with_deadline(plan, token, deadline),
        None => engine.submit(plan, token),
    };
    slots[client as usize].hedge = Some(handle);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{round_trip_plan, StoreCtx};
    use apm_core::driver::Throttle;
    use apm_core::ops::Operation;
    use apm_core::record::Record;
    use apm_sim::{ClusterSpec, Plan};
    use std::collections::BTreeMap;

    /// A minimal in-memory store with a fixed CPU cost, for driver tests.
    struct FixtureStore {
        ctx: StoreCtx,
        data: BTreeMap<apm_core::record::MetricKey, Record>,
        cpu_us: u64,
        /// Offer hedge plans (duplicate read against the same node).
        hedged: bool,
    }

    impl FixtureStore {
        fn new(engine: &mut Engine, cpu_us: u64) -> FixtureStore {
            let ctx = StoreCtx::new(engine, ClusterSpec::cluster_m(), 1, 1, 0.1, 3);
            FixtureStore {
                ctx,
                data: BTreeMap::new(),
                cpu_us,
                hedged: false,
            }
        }

        fn read_plan(&self, client: u32) -> Plan {
            let server = self.ctx.servers[0];
            round_trip_plan(
                &self.ctx,
                client,
                &server,
                SimDuration::from_micros(5),
                100,
                175,
                vec![apm_sim::Step::Acquire {
                    resource: server.cpu,
                    service: SimDuration::from_micros(self.cpu_us),
                }],
            )
        }
    }

    impl DistributedStore for FixtureStore {
        fn name(&self) -> &'static str {
            "fixture"
        }

        fn ctx(&self) -> &StoreCtx {
            &self.ctx
        }

        fn load(&mut self, record: &Record) {
            self.data.insert(record.key, *record);
        }

        fn plan_op(
            &mut self,
            client: u32,
            op: &Operation,
            _engine: &mut Engine,
        ) -> (OpOutcome, Plan) {
            let outcome = match op {
                Operation::Read { key } => match self.data.get(key) {
                    Some(r) => OpOutcome::Found(*r),
                    None => OpOutcome::Missing,
                },
                Operation::Insert { record } | Operation::Update { record } => {
                    self.data.insert(record.key, *record);
                    OpOutcome::Done
                }
                Operation::Scan { .. } => OpOutcome::Scanned(0),
            };
            (outcome, self.read_plan(client))
        }

        fn plan_target(&self, _op: &Operation) -> Option<usize> {
            Some(0)
        }

        fn hedge_read_plan(
            &mut self,
            client: u32,
            op: &Operation,
            _engine: &mut Engine,
        ) -> Option<Plan> {
            if self.hedged && matches!(op, Operation::Read { .. }) {
                Some(self.read_plan(client))
            } else {
                None
            }
        }

        fn disk_bytes_per_node(&self) -> Option<u64> {
            None
        }

        fn snap_state(&self, w: &mut SnapWriter) {
            w.put(&self.data);
        }

        fn restore_state(
            &mut self,
            r: &mut SnapReader,
            _engine: &mut Engine,
        ) -> Result<(), SnapError> {
            self.data = r.get()?;
            Ok(())
        }
    }

    fn quick_config(workload: Workload) -> RunConfig {
        RunConfig {
            workload,
            client: ClientConfig::cluster_m(1).with_window(0.5, 2.0),
            records_per_node: 1_000,
            nodes: 1,
            seed: 42,
            event_at_secs: None,
            faults: FaultSchedule::none(),
            op_deadline: None,
            telemetry_window_secs: None,
            resilience: None,
            checkpoints: None,
        }
    }

    #[test]
    fn max_throughput_run_saturates_the_cpu_pool() {
        let mut engine = Engine::new();
        let mut store = FixtureStore::new(&mut engine, 100);
        let result = run_benchmark(&mut engine, &mut store, &quick_config(Workload::r()));
        // 8 cores at 100us/op → theoretical 80K ops/s; expect >60% of it.
        let throughput = result.throughput();
        assert!(throughput > 48_000.0, "throughput too low: {throughput}");
        assert!(
            throughput < 85_000.0,
            "throughput above physical limit: {throughput}"
        );
        // Closed loop, 128 conns: latency ≈ conns/throughput (Little's law).
        let little = 128.0 / throughput * 1_000.0;
        let read_ms = result
            .mean_latency_ms(OpKind::Read)
            .expect("reads measured");
        assert!(
            (read_ms - little).abs() / little < 0.35,
            "read {read_ms} ms vs little {little} ms"
        );
    }

    #[test]
    fn bounded_throughput_tracks_target_and_lowers_latency() {
        let mut engine = Engine::new();
        let mut store = FixtureStore::new(&mut engine, 100);
        let max = run_benchmark(&mut engine, &mut store, &quick_config(Workload::r()));
        let max_lat = max.mean_latency_ms(OpKind::Read).unwrap();

        let mut engine2 = Engine::new();
        let mut store2 = FixtureStore::new(&mut engine2, 100);
        let mut cfg = quick_config(Workload::r());
        let target = max.throughput() * 0.5;
        cfg.client = cfg.client.with_throttle(Throttle::TargetOps(target));
        let half = run_benchmark(&mut engine2, &mut store2, &cfg);
        assert!(
            (half.throughput() - target).abs() / target < 0.1,
            "bounded run off target: {} vs {}",
            half.throughput(),
            target
        );
        let half_lat = half.mean_latency_ms(OpKind::Read).unwrap();
        assert!(
            half_lat < max_lat / 2.0,
            "uncongested latency should collapse: {half_lat} vs {max_lat}"
        );
    }

    #[test]
    fn workload_mix_is_respected_in_measured_ops() {
        let mut engine = Engine::new();
        let mut store = FixtureStore::new(&mut engine, 50);
        let result = run_benchmark(&mut engine, &mut store, &quick_config(Workload::rw()));
        let reads = result.stats.ops(OpKind::Read) as f64;
        let inserts = result.stats.ops(OpKind::Insert) as f64;
        let ratio = reads / (reads + inserts);
        assert!(
            (ratio - 0.5).abs() < 0.05,
            "RW should be half reads: {ratio}"
        );
    }

    #[test]
    fn run_is_deterministic() {
        let run = || {
            let mut engine = Engine::new();
            let mut store = FixtureStore::new(&mut engine, 100);
            let r = run_benchmark(&mut engine, &mut store, &quick_config(Workload::rw()));
            (r.stats.total_ops(), r.issued)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn crash_window_shows_up_as_errors_then_recovery() {
        let mut engine = Engine::new();
        let mut store = FixtureStore::new(&mut engine, 100);
        let mut cfg = quick_config(Workload::r());
        // Crash the only node 0.4 s into the 2 s window, restart at 0.9 s
        // (failure tails complete within the same one-second bucket).
        cfg.faults = FaultSchedule::none().crash(0, SimTime(400_000_000), SimTime(900_000_000));
        let result = run_benchmark(&mut engine, &mut store, &cfg);
        assert!(result.stats.total_errors() > 0, "crash produced no errors");
        assert!(result.stats.availability() < 1.0);
        assert!(
            result.stats.availability() > 0.2,
            "errors are cheap; most ops still land"
        );
        // The post-restart second throughputs like the pre-fault one.
        let timeline = result.stats.timeline();
        assert!(timeline.len() >= 2);
        let last = *timeline.last().unwrap() as f64;
        assert!(last > 0.6 * timeline[0] as f64, "no recovery: {timeline:?}");
        // Errors concentrate in the crash window (second 0 of the
        // timeline covers 0-1 s, where the whole outage and its 500 us
        // completion tail sit).
        let errors = result.stats.error_timeline();
        assert!(errors[0] > 0, "outage second shows no errors: {errors:?}");
        assert!(
            errors.iter().skip(1).all(|&e| e == 0),
            "errors after restart: {errors:?}"
        );
    }

    #[test]
    fn runs_are_deterministic_under_faults() {
        let run = || {
            let mut engine = Engine::new();
            let mut store = FixtureStore::new(&mut engine, 100);
            let mut cfg = quick_config(Workload::rw());
            cfg.faults = FaultSchedule::none()
                .crash(0, SimTime(300_000_000), SimTime(700_000_000))
                .slow_disk(0, SimTime(1_000_000_000), SimTime(1_500_000_000), 4);
            cfg.op_deadline = Some(SimDuration::from_millis(250));
            let r = run_benchmark(&mut engine, &mut store, &cfg);
            (
                r.stats.total_ops(),
                r.stats.total_errors(),
                r.issued,
                r.stats.timeline().to_vec(),
                r.stats.error_timeline().to_vec(),
            )
        };
        // Same seed + same fault schedule ⇒ byte-identical sequences,
        // asserted twice to catch flaky hidden state.
        let (a, b, c) = (run(), run(), run());
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn server_resource_class_splits_servers_from_clients() {
        assert_eq!(server_resource_class("node3.cpu"), Some("cpu"));
        assert_eq!(server_resource_class("node0.disk"), Some("disk"));
        assert_eq!(server_resource_class("node11.nic"), Some("net"));
        assert_eq!(server_resource_class("client0.cpu"), None);
        assert_eq!(server_resource_class("client4.nic"), None);
        assert_eq!(server_resource_class("coordinator"), None);
        // Software serialisation stages count as server compute.
        assert_eq!(server_resource_class("redis2.eventloop"), Some("cpu"));
        assert_eq!(server_resource_class("mongod0.writelock"), Some("cpu"));
        assert_eq!(server_resource_class("datanode1.xceiver"), Some("cpu"));
        assert_eq!(server_resource_class("voltdb.site3"), Some("cpu"));
        assert_eq!(server_resource_class("voltdb.initiator"), Some("cpu"));
    }

    #[test]
    fn telemetry_records_windows_with_consistent_quantiles() {
        let mut engine = Engine::new();
        let mut store = FixtureStore::new(&mut engine, 100);
        let mut cfg = quick_config(Workload::r());
        cfg.telemetry_window_secs = Some(0.5);
        let result = run_benchmark(&mut engine, &mut store, &cfg);
        let telemetry = result.telemetry.expect("telemetry requested");
        // 2 s measurement window at 0.5 s per window → 4 full windows.
        assert_eq!(telemetry.windows().len(), 4);
        let total: u64 = telemetry.windows().iter().map(|w| w.ops()).sum();
        assert_eq!(total, result.stats.total_ops(), "every measured op lands");
        for w in telemetry.windows() {
            assert!(w.ops() > 0, "saturated loop fills every window");
            assert!(w.quantile_latency_ms(0.99) >= w.quantile_latency_ms(0.95));
            assert!(w.quantile_latency_ms(0.95) >= w.quantile_latency_ms(0.50));
            let cpu = w.resource("cpu").expect("server cpu sampled");
            assert!(
                cpu.utilization > 0.5 && cpu.utilization < 1.2,
                "cpu-bound fixture should saturate: {}",
                cpu.utilization
            );
            assert!(cpu.queue_depth >= 0.0);
        }
        // The fixture plan touches no server disk: zero utilisation.
        let disk = telemetry.windows()[0].resource("disk").expect("sampled");
        assert_eq!(disk.utilization, 0.0);
    }

    #[test]
    fn telemetry_is_deterministic_and_off_by_default() {
        let run = || {
            let mut engine = Engine::new();
            let mut store = FixtureStore::new(&mut engine, 100);
            let mut cfg = quick_config(Workload::rw());
            cfg.telemetry_window_secs = Some(0.5);
            let r = run_benchmark(&mut engine, &mut store, &cfg);
            let t = r.telemetry.unwrap();
            let shape: Vec<(u64, u64, u64)> = t
                .windows()
                .iter()
                .map(|w| (w.ops(), w.errors(), w.latency().max()))
                .collect();
            let utils: Vec<u64> = t
                .windows()
                .iter()
                .map(|w| w.resource("cpu").unwrap().utilization.to_bits())
                .collect();
            (shape, utils)
        };
        assert_eq!(run(), run());

        let mut engine = Engine::new();
        let mut store = FixtureStore::new(&mut engine, 100);
        let r = run_benchmark(&mut engine, &mut store, &quick_config(Workload::r()));
        assert!(r.telemetry.is_none(), "telemetry must be opt-in");
    }

    #[test]
    fn reads_never_miss() {
        // The generator only reads acked records; a miss means the driver
        // acked too early or the store lost data.
        let mut engine = Engine::new();
        let mut store = FixtureStore::new(&mut engine, 20);
        let result = run_benchmark(&mut engine, &mut store, &quick_config(Workload::rw()));
        assert_eq!(result.stats.total_rejected(), 0);
        // Missing reads would have been recorded as rejections via
        // OpOutcome::Missing only if the fixture returned them — assert
        // the fixture found every key by checking ok-flags stayed true.
        assert!(result.stats.ops(OpKind::Read) > 0);
    }

    use crate::resilience::{AdmissionPolicy, BreakerPolicy, HedgePolicy, RetryPolicy};

    #[test]
    fn empty_resilience_policy_matches_the_legacy_driver() {
        let run = |resilience: Option<ResiliencePolicy>| {
            let mut engine = Engine::new();
            let mut store = FixtureStore::new(&mut engine, 100);
            let mut cfg = quick_config(Workload::rw());
            cfg.faults = FaultSchedule::none().crash(0, SimTime(400_000_000), SimTime(900_000_000));
            cfg.resilience = resilience;
            let r = run_benchmark(&mut engine, &mut store, &cfg);
            (
                r.issued,
                r.stats.total_ops(),
                r.stats.total_errors(),
                r.stats.total_rejected(),
                r.stats.throughput().to_bits(),
                r.stats.mean_latency_ms(OpKind::Read).map(f64::to_bits),
            )
        };
        // A policy bundle with every component disabled must reproduce
        // the legacy driver's results exactly.
        assert_eq!(run(None), run(Some(ResiliencePolicy::default())));
    }

    #[test]
    fn retries_mask_a_crash_window() {
        let run = |retry: Option<RetryPolicy>| {
            let mut engine = Engine::new();
            let mut store = FixtureStore::new(&mut engine, 100);
            let mut cfg = quick_config(Workload::r());
            cfg.faults = FaultSchedule::none().crash(0, SimTime(400_000_000), SimTime(900_000_000));
            cfg.resilience = Some(ResiliencePolicy {
                retry,
                ..ResiliencePolicy::default()
            });
            run_benchmark(&mut engine, &mut store, &cfg)
        };
        let bare = run(None);
        let retried = run(Some(RetryPolicy::standard()));
        assert!(bare.stats.total_errors() > 0, "crash produced no errors");
        assert_eq!(bare.stats.resilience().retries, 0);
        assert!(retried.stats.resilience().retries > 0);
        assert!(
            retried.stats.availability() > bare.stats.availability(),
            "retries did not improve availability: {} vs {}",
            retried.stats.availability(),
            bare.stats.availability()
        );
    }

    #[test]
    fn hedged_reads_fire_and_never_double_count() {
        let mut engine = Engine::new();
        let mut store = FixtureStore::new(&mut engine, 100);
        store.hedged = true;
        let mut cfg = quick_config(Workload::r());
        cfg.resilience = Some(ResiliencePolicy {
            hedge: Some(HedgePolicy {
                delay_quantile: 0.95,
                min_delay: SimDuration::ZERO,
                warmup_samples: u64::MAX, // pin the delay to the floor
            }),
            ..ResiliencePolicy::default()
        });
        let r = run_benchmark(&mut engine, &mut store, &cfg);
        let counters = *r.stats.resilience();
        assert!(counters.hedges > 0, "no hedges launched");
        assert!(counters.hedge_wins <= counters.hedges);
        // Every logical op resolves exactly once: the measured records
        // can never exceed the logical ops issued, even though every read
        // ran as two racing attempts.
        let logical = r.issued - counters.hedges - counters.retries;
        let recorded = r.stats.total_ops() + r.stats.total_errors() + r.stats.total_rejected();
        assert!(
            recorded <= logical,
            "double-counted completions: {recorded} records for {logical} logical ops"
        );
    }

    #[test]
    fn breaker_sheds_during_an_outage_and_recovers() {
        let run = |breaker: Option<BreakerPolicy>| {
            let mut engine = Engine::new();
            let mut store = FixtureStore::new(&mut engine, 100);
            let mut cfg = quick_config(Workload::r());
            // Throttle so shed fast-fails don't spin the closed loop.
            cfg.client = cfg.client.with_throttle(Throttle::TargetOps(5_000.0));
            cfg.faults =
                FaultSchedule::none().crash(0, SimTime(300_000_000), SimTime(1_200_000_000));
            cfg.resilience = Some(ResiliencePolicy {
                breaker,
                ..ResiliencePolicy::default()
            });
            run_benchmark(&mut engine, &mut store, &cfg)
        };
        let bare = run(None);
        let broken = run(Some(BreakerPolicy {
            window: 20,
            error_threshold: 0.5,
            open_for: SimDuration::from_millis(200),
        }));
        let counters = *broken.stats.resilience();
        assert!(counters.shed > 0, "breaker never shed");
        assert!(
            counters.breaker_transitions >= 2,
            "expected a full open/close cycle, saw {} transitions",
            counters.breaker_transitions
        );
        // Shedding turns would-be errors into fast client-side
        // rejections, so the error count drops against the bare run.
        assert!(
            broken.stats.total_errors() < bare.stats.total_errors(),
            "breaker did not bound errors: {} vs {}",
            broken.stats.total_errors(),
            bare.stats.total_errors()
        );
        assert!(broken.stats.total_rejected() > 0);
    }

    #[test]
    fn admission_control_bounds_a_retry_storm() {
        let run = |admission: Option<AdmissionPolicy>| {
            let mut engine = Engine::new();
            let mut store = FixtureStore::new(&mut engine, 100);
            let mut cfg = quick_config(Workload::r());
            cfg.faults =
                FaultSchedule::none().crash(0, SimTime(300_000_000), SimTime(1_200_000_000));
            cfg.resilience = Some(ResiliencePolicy {
                retry: Some(RetryPolicy {
                    // An aggressive client: many cheap retries.
                    max_retries_read: 8,
                    max_retries_write: 8,
                    base_backoff: SimDuration::from_millis(1),
                    backoff_cap: SimDuration::from_millis(4),
                    jitter: 0.0,
                }),
                admission,
                ..ResiliencePolicy::default()
            });
            run_benchmark(&mut engine, &mut store, &cfg)
        };
        let unbounded = run(None);
        let budgeted = run(Some(AdmissionPolicy {
            retry_ratio: 0.05,
            burst: 5,
        }));
        assert!(
            budgeted.stats.resilience().retries < unbounded.stats.resilience().retries,
            "admission control did not bound the storm: {} vs {}",
            budgeted.stats.resilience().retries,
            unbounded.stats.resilience().retries
        );
        assert!(
            budgeted.stats.resilience().shed > 0,
            "no retries were shed by the admission budget"
        );
    }

    /// Everything a run reports, snap-encoded — byte equality of two
    /// sigs means the runs were observationally identical.
    fn result_sig(r: &RunResult) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.put(&r.stats);
        w.put_u64(r.issued);
        w.put(&r.disk_bytes_per_node);
        w.put(&r.telemetry);
        w.into_bytes()
    }

    #[test]
    fn checkpoints_are_captured_on_schedule() {
        let mut engine = Engine::new();
        let mut store = FixtureStore::new(&mut engine, 100);
        let mut cfg = quick_config(Workload::rw());
        cfg.telemetry_window_secs = Some(0.5);
        cfg.checkpoints = Some(CheckpointSpec::every(0.5));
        let result = run_benchmark(&mut engine, &mut store, &cfg);
        // Warm-up 0.5 s + 2 s window at 0.5 s cadence: boundaries at
        // 1.0/1.5/2.0/2.5 s; the last coincides with the window end and
        // only lands if a completion hits it exactly.
        assert!(
            result.checkpoints.len() == 3 || result.checkpoints.len() == 4,
            "unexpected checkpoint count: {}",
            result.checkpoints.len()
        );
        for (i, cp) in result.checkpoints.iter().enumerate() {
            assert_eq!(cp.index, i as u32);
            let header = cp.header();
            assert_eq!(header.scenario, "fixture");
            assert_eq!(header.checkpoint_index, cp.index);
            assert_eq!(header.virtual_time_ns, cp.at.0);
            assert_eq!(
                header.config_fingerprint,
                config_fingerprint("fixture", &cfg)
            );
            if i > 0 {
                assert!(cp.at > result.checkpoints[i - 1].at);
            }
        }
    }

    #[test]
    fn resume_from_every_checkpoint_is_byte_identical() {
        let mut cfg = quick_config(Workload::rw());
        cfg.telemetry_window_secs = Some(0.5);
        cfg.checkpoints = Some(CheckpointSpec::every(0.5));
        let mut engine = Engine::new();
        let mut store = FixtureStore::new(&mut engine, 100);
        let straight = run_benchmark(&mut engine, &mut store, &cfg);
        assert!(straight.checkpoints.len() >= 3);
        for cp in &straight.checkpoints {
            let mut engine2 = Engine::new();
            let mut store2 = FixtureStore::new(&mut engine2, 100);
            let resumed = resume_benchmark(&mut engine2, &mut store2, &cfg, &cp.bytes)
                .expect("resume succeeds");
            assert_eq!(
                result_sig(&resumed),
                result_sig(&straight),
                "resume from checkpoint {} drifted",
                cp.index
            );
            // The continuation recaptures the straight run's later
            // checkpoints byte-for-byte, containers included.
            let later: Vec<&Checkpoint> = straight
                .checkpoints
                .iter()
                .filter(|later| later.index > cp.index)
                .collect();
            assert_eq!(resumed.checkpoints.len(), later.len());
            for (a, b) in resumed.checkpoints.iter().zip(later) {
                assert_eq!(a.index, b.index);
                assert_eq!(a.bytes, b.bytes, "checkpoint {} not re-captured", b.index);
            }
        }
    }

    #[test]
    fn resilient_resume_is_byte_identical() {
        let mut cfg = quick_config(Workload::rw());
        cfg.faults = FaultSchedule::none().crash(0, SimTime(300_000_000), SimTime(700_000_000));
        cfg.op_deadline = Some(SimDuration::from_millis(250));
        cfg.resilience = Some(ResiliencePolicy {
            retry: Some(RetryPolicy::standard()),
            hedge: Some(HedgePolicy {
                delay_quantile: 0.95,
                min_delay: SimDuration::from_micros(500),
                warmup_samples: 50,
            }),
            breaker: Some(BreakerPolicy::standard()),
            admission: Some(AdmissionPolicy::standard()),
        });
        cfg.checkpoints = Some(CheckpointSpec::every(0.5));
        let build = || {
            let mut engine = Engine::new();
            let mut store = FixtureStore::new(&mut engine, 100);
            store.hedged = true;
            (engine, store)
        };
        let (mut engine, mut store) = build();
        let straight = run_benchmark(&mut engine, &mut store, &cfg);
        assert!(!straight.checkpoints.is_empty());
        for cp in &straight.checkpoints {
            let (mut engine2, mut store2) = build();
            let resumed = resume_benchmark(&mut engine2, &mut store2, &cfg, &cp.bytes)
                .expect("resume succeeds");
            assert_eq!(
                result_sig(&resumed),
                result_sig(&straight),
                "resilient resume from checkpoint {} drifted",
                cp.index
            );
            assert_eq!(resumed.stats.resilience(), straight.stats.resilience());
        }
    }

    #[test]
    fn resume_rejects_a_mismatched_config() {
        let mut cfg = quick_config(Workload::rw());
        cfg.checkpoints = Some(CheckpointSpec::every(0.5));
        let mut engine = Engine::new();
        let mut store = FixtureStore::new(&mut engine, 100);
        let straight = run_benchmark(&mut engine, &mut store, &cfg);
        let cp = &straight.checkpoints[0];

        let mut other = cfg.clone();
        other.seed = 43;
        let mut engine2 = Engine::new();
        let mut store2 = FixtureStore::new(&mut engine2, 100);
        match resume_benchmark(&mut engine2, &mut store2, &other, &cp.bytes) {
            Err(SnapError::ConfigMismatch { .. }) => {}
            other => panic!("expected ConfigMismatch, got {other:?}"),
        }

        // A corrupted container never reaches the restore path.
        let mut bytes = cp.bytes.clone();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        let mut engine3 = Engine::new();
        let mut store3 = FixtureStore::new(&mut engine3, 100);
        match resume_benchmark(&mut engine3, &mut store3, &cfg, &bytes) {
            Err(SnapError::ChecksumMismatch { .. }) => {}
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
    }

    #[test]
    fn bisect_localizes_an_injected_divergence() {
        let run = |perturb_at_secs: Option<f64>| {
            let mut engine = Engine::new();
            let mut store = FixtureStore::new(&mut engine, 100);
            let mut cfg = quick_config(Workload::rw());
            cfg.checkpoints = Some(CheckpointSpec {
                every_secs: 0.25,
                perturb_at_secs,
            });
            run_benchmark(&mut engine, &mut store, &cfg)
        };
        let clean = run(None);
        let twin = run(None);
        let perturbed = run(Some(1.1));

        // Identical runs: no divergence at any common checkpoint.
        assert_eq!(
            bisect_divergence(&clean.checkpoints, &twin.checkpoints),
            None
        );
        assert_eq!(
            bisect_divergence(&clean.checkpoints, &clean.checkpoints),
            None
        );

        // The perturbation burns one workload draw 1.1 s after warm-up:
        // inside checkpoint window 4 (boundaries every 0.25 s, checkpoint
        // k at 0.25·(k+1); 1.1 s lies in (1.0, 1.25]).
        let first = bisect_divergence(&clean.checkpoints, &perturbed.checkpoints);
        assert_eq!(first, Some(4), "divergence localized to the wrong window");
        for k in 0..4 {
            assert_eq!(
                clean.checkpoints[k].state_hash(),
                perturbed.checkpoints[k].state_hash(),
                "pre-perturbation checkpoint {k} diverged"
            );
        }
        assert_ne!(
            clean.checkpoints[4].state_hash(),
            perturbed.checkpoints[4].state_hash()
        );
    }

    #[test]
    fn ledger_balances_and_records_acked_inserts() {
        // Legacy driver: every issued op is logical; the ledger resolves
        // all but the in-flight residue, and every acked insert key is
        // readable from the store afterwards.
        let mut engine = Engine::new();
        let mut store = FixtureStore::new(&mut engine, 100);
        let cfg = quick_config(Workload::rw());
        let r = run_benchmark(&mut engine, &mut store, &cfg);
        assert_eq!(r.ledger.logical, r.issued, "legacy ops are all logical");
        assert!(r.ledger.resolved <= r.ledger.logical);
        let connections = u64::from(cfg.client.connections);
        assert!(
            r.ledger.logical - r.ledger.resolved <= connections,
            "in-flight residue {} exceeds {} connections",
            r.ledger.logical - r.ledger.resolved,
            connections
        );
        assert!(
            !r.ledger.acked_inserts.is_empty(),
            "RW run acked no inserts"
        );
        for key in &r.ledger.acked_inserts {
            assert!(store.data.contains_key(key), "acked key not durable");
        }

        // Resilient driver with hedging: retries/hedges inflate `issued`
        // but not `logical`, and the balance still holds.
        let mut engine2 = Engine::new();
        let mut store2 = FixtureStore::new(&mut engine2, 100);
        store2.hedged = true;
        let mut cfg2 = quick_config(Workload::rw());
        cfg2.faults = FaultSchedule::none().crash(0, SimTime(300_000_000), SimTime(700_000_000));
        cfg2.op_deadline = Some(SimDuration::from_millis(250));
        cfg2.resilience = Some(ResiliencePolicy {
            retry: Some(RetryPolicy::standard()),
            hedge: Some(HedgePolicy {
                delay_quantile: 0.95,
                min_delay: SimDuration::from_micros(500),
                warmup_samples: 50,
            }),
            breaker: Some(BreakerPolicy::standard()),
            admission: Some(AdmissionPolicy::standard()),
        });
        let r2 = run_benchmark(&mut engine2, &mut store2, &cfg2);
        assert!(
            r2.ledger.logical < r2.issued,
            "extra attempts must not be logical"
        );
        assert!(r2.ledger.resolved <= r2.ledger.logical);
        assert!(r2.ledger.logical - r2.ledger.resolved <= connections);
        for key in &r2.ledger.acked_inserts {
            assert!(store2.data.contains_key(key), "acked key not durable");
        }
    }

    #[test]
    fn fully_masked_faults_match_the_fault_free_run() {
        let faulty = || {
            let mut cfg = quick_config(Workload::rw());
            cfg.faults = FaultSchedule::none()
                .crash(0, SimTime(400_000_000), SimTime(900_000_000))
                .slow_disk(0, SimTime(1_000_000_000), SimTime(1_500_000_000), 4);
            cfg
        };
        let mut engine = Engine::new();
        let mut store = FixtureStore::new(&mut engine, 100);
        let mask = vec![false; 4];
        let masked = run_benchmark_masked(&mut engine, &mut store, &faulty(), Some(&mask));

        let mut engine2 = Engine::new();
        let mut store2 = FixtureStore::new(&mut engine2, 100);
        let clean = run_benchmark(&mut engine2, &mut store2, &quick_config(Workload::rw()));
        // Masked-out events still fire their sentinels but dispatch
        // nothing, so the observable run equals the fault-free one.
        assert_eq!(result_sig(&masked), result_sig(&clean));
        assert_eq!(masked.ledger, clean.ledger);

        // An all-true mask is the identity.
        let mut engine3 = Engine::new();
        let mut store3 = FixtureStore::new(&mut engine3, 100);
        let mask_on = vec![true; 4];
        let full = run_benchmark_masked(&mut engine3, &mut store3, &faulty(), Some(&mask_on));
        let mut engine4 = Engine::new();
        let mut store4 = FixtureStore::new(&mut engine4, 100);
        let unmasked = run_benchmark(&mut engine4, &mut store4, &faulty());
        assert_eq!(result_sig(&full), result_sig(&unmasked));
    }

    #[test]
    fn masked_probe_resumes_from_a_pre_divergence_checkpoint() {
        // The shrinker's resume trick: a probe that disables fault events
        // may resume from any checkpoint of the full-schedule run taken
        // before the first disabled event dispatches.
        let mut cfg = quick_config(Workload::rw());
        // Crash dispatches at warmup_end + 0.4 s; checkpoint 0 lands at
        // ~warmup_end + 0.25 s — strictly before it.
        cfg.faults = FaultSchedule::none().crash(0, SimTime(400_000_000), SimTime(900_000_000));
        cfg.checkpoints = Some(CheckpointSpec::every(0.25));
        let mut engine = Engine::new();
        let mut store = FixtureStore::new(&mut engine, 100);
        let base = run_benchmark(&mut engine, &mut store, &cfg);
        let cp = &base.checkpoints[0];
        assert!(
            cp.at < SimTime(500_000_000 + 400_000_000),
            "checkpoint not pre-fault"
        );

        let mask = vec![false, false];
        let mut engine2 = Engine::new();
        let mut store2 = FixtureStore::new(&mut engine2, 100);
        let scratch = run_benchmark_masked(&mut engine2, &mut store2, &cfg, Some(&mask));

        let mut engine3 = Engine::new();
        let mut store3 = FixtureStore::new(&mut engine3, 100);
        let resumed =
            resume_benchmark_masked(&mut engine3, &mut store3, &cfg, &cp.bytes, Some(&mask))
                .expect("masked resume succeeds");
        assert_eq!(
            result_sig(&resumed),
            result_sig(&scratch),
            "masked resume drifted from the masked from-scratch run"
        );
        assert_eq!(resumed.ledger, scratch.ledger);
        // And the probe genuinely differs from the faulty base run.
        assert_ne!(result_sig(&scratch), result_sig(&base));
    }

    #[test]
    fn resilient_runs_are_deterministic() {
        let run = || {
            let mut engine = Engine::new();
            let mut store = FixtureStore::new(&mut engine, 100);
            store.hedged = true;
            let mut cfg = quick_config(Workload::rw());
            cfg.faults = FaultSchedule::none().crash(0, SimTime(300_000_000), SimTime(700_000_000));
            cfg.op_deadline = Some(SimDuration::from_millis(250));
            cfg.resilience = Some(ResiliencePolicy {
                retry: Some(RetryPolicy::standard()),
                hedge: Some(HedgePolicy {
                    delay_quantile: 0.95,
                    min_delay: SimDuration::from_micros(500),
                    warmup_samples: 50,
                }),
                breaker: Some(BreakerPolicy::standard()),
                admission: Some(AdmissionPolicy::standard()),
            });
            let r = run_benchmark(&mut engine, &mut store, &cfg);
            (
                r.issued,
                r.stats.total_ops(),
                r.stats.total_errors(),
                *r.stats.resilience(),
                r.stats.throughput().to_bits(),
            )
        };
        assert_eq!(run(), run());
    }
}
