//! The closed-loop benchmark driver.
//!
//! Reproduces the YCSB execution model of §3: a population of
//! connections, each a closed loop (issue → wait → issue), running a
//! [`Workload`] against a store for a warm-up plus measurement window.
//! Maximum-throughput mode lets every connection go flat out ("all of
//! them working as intensively as possible"); bounded mode (§5.6) spaces
//! issues to hit a target aggregate rate.

use crate::api::{fault_token, split_fault_token, split_token, DistributedStore};
use apm_core::driver::ClientConfig;
use apm_core::keyspace::record_for_seq;
use apm_core::ops::{OpKind, OpOutcome};
use apm_core::stats::{pairwise_sum, BenchStats, ResourceSample, Telemetry};
use apm_core::workload::{Workload, WorkloadGenerator};
use apm_sim::kernel::{ResourceId, Token};
use apm_sim::{Engine, FaultSchedule, Plan, SimDuration, SimTime};
use std::collections::BTreeMap;

/// Configuration of one benchmark run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// The workload mix.
    pub workload: Workload,
    /// Client population and measurement window.
    pub client: ClientConfig,
    /// Records pre-loaded per server node (paper: 10 M × scale).
    pub records_per_node: u64,
    /// Server node count (for the records total).
    pub nodes: u32,
    /// RNG seed.
    pub seed: u64,
    /// Fire [`DistributedStore::on_timed_event`] once, this many seconds
    /// after the measurement window starts (elasticity experiment).
    pub event_at_secs: Option<f64>,
    /// Node faults to inject; event times are offsets from the start of
    /// the measurement window (the failure-recovery experiments).
    pub faults: FaultSchedule,
    /// Client-side operation deadline. Operations not finished within it
    /// complete as timed out and count as errors — required to observe
    /// network partitions (stalled requests never finish on their own).
    pub op_deadline: Option<SimDuration>,
    /// Record windowed [`Telemetry`] (per-window throughput, error rate,
    /// latency percentiles, per-class server utilisation and queue depth)
    /// with this window size. `None` (the default for all paper figures)
    /// skips recording entirely.
    pub telemetry_window_secs: Option<f64>,
}

/// Result of one benchmark run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Latency and throughput statistics over the measurement window.
    pub stats: BenchStats,
    /// Operations issued in total (including warm-up and rejected).
    pub issued: u64,
    /// Per-node disk usage after the run, if the store persists to disk.
    pub disk_bytes_per_node: Option<u64>,
    /// Windowed telemetry over the measurement window, when
    /// [`RunConfig::telemetry_window_secs`] was set.
    pub telemetry: Option<Telemetry>,
}

impl RunResult {
    /// Overall throughput in operations per second.
    pub fn throughput(&self) -> f64 {
        self.stats.throughput()
    }

    /// Mean latency in milliseconds for `kind`.
    pub fn mean_latency_ms(&self, kind: OpKind) -> Option<f64> {
        self.stats.mean_latency_ms(kind)
    }
}

struct ClientSlot {
    kind: OpKind,
    ok: bool,
    /// The read missed — with fault injection this means the store lost
    /// the record (e.g. a crashed cache node), counted as an error.
    missing: bool,
    /// Next scheduled issue time under throttling.
    next_issue: SimTime,
}

/// Resource class (`cpu` / `disk` / `net`) of a *server* resource name;
/// `None` for client machines (workload generators, not the system under
/// test) and unclassified resources. Server-side software serialisation
/// stages — Redis's event loop, MongoDB's write lock, HDFS xceiver
/// pools, VoltDB sites and initiator — count as `cpu`: they are where a
/// request burns compute, distinct from the physical disk and NIC
/// acquires those stores also make.
pub fn server_resource_class(name: &str) -> Option<&'static str> {
    if name.starts_with("client") {
        return None;
    }
    if name.ends_with(".cpu")
        || name.ends_with(".eventloop")
        || name.ends_with(".writelock")
        || name.ends_with(".xceiver")
        || name.starts_with("voltdb.")
    {
        Some("cpu")
    } else if name.ends_with(".disk") {
        Some("disk")
    } else if name.ends_with(".nic") {
        Some("net")
    } else {
        None
    }
}

/// Samples per-class server-resource state at telemetry window
/// boundaries. A boundary is detected at the first completion at or past
/// it, so samples lag the nominal boundary by at most one op latency —
/// deterministic, and negligible against one-second windows.
struct TelemetrySampler {
    telemetry: Telemetry,
    window: SimDuration,
    warmup_end: SimTime,
    /// Next unsampled boundary index; boundary `k` closes window `k - 1`.
    boundary: u64,
    /// Service-busy nanoseconds per resource at the previous boundary.
    prev_busy: Vec<u128>,
}

impl TelemetrySampler {
    fn new(engine: &Engine, window_secs: f64, warmup_end: SimTime) -> TelemetrySampler {
        let window = SimDuration::from_secs_f64(window_secs);
        TelemetrySampler {
            telemetry: Telemetry::new(window.as_nanos()),
            window,
            warmup_end,
            boundary: 0,
            prev_busy: vec![0; engine.resource_count()],
        }
    }

    fn boundary_time(&self, k: u64) -> SimTime {
        self.warmup_end + SimDuration::from_nanos(self.window.as_nanos() * k)
    }

    /// Samples every boundary at or before `now`.
    fn advance_to(&mut self, engine: &Engine, now: SimTime) {
        while self.boundary_time(self.boundary) <= now {
            let k = self.boundary;
            self.boundary += 1;
            if k == 0 {
                // Boundary 0 is the measurement start: baseline only.
                self.snapshot_busy(engine);
                continue;
            }
            self.sample_window(engine, (k - 1) as usize);
        }
    }

    fn snapshot_busy(&mut self, engine: &Engine) {
        for (i, prev) in self.prev_busy.iter_mut().enumerate() {
            *prev = engine.service_ns(ResourceId(i as u32));
        }
    }

    fn sample_window(&mut self, engine: &Engine, index: usize) {
        let mut utils: BTreeMap<&'static str, Vec<f64>> = BTreeMap::new();
        let mut queues: BTreeMap<&'static str, f64> = BTreeMap::new();
        let window_ns = self.window.as_nanos() as f64;
        for i in 0..engine.resource_count() {
            let id = ResourceId(i as u32);
            let Some(class) = server_resource_class(engine.resource_name(id)) else {
                continue;
            };
            let delta = engine.service_ns(id) - self.prev_busy[i];
            let util = delta as f64 / (window_ns * f64::from(engine.resource_capacity(id)));
            utils.entry(class).or_default().push(util);
            *queues.entry(class).or_default() += engine.queue_len(id) as f64;
        }
        self.snapshot_busy(engine);
        for (class, class_utils) in &utils {
            let sample = ResourceSample {
                utilization: pairwise_sum(class_utils) / class_utils.len() as f64,
                queue_depth: queues[class],
            };
            self.telemetry.sample_resource(index, class, sample);
        }
    }
}

/// Runs the load phase then the transaction phase of one benchmark.
///
/// The store must have been constructed against `engine` (its resources
/// live there). Returns the measured statistics.
pub fn run_benchmark(
    engine: &mut Engine,
    store: &mut dyn DistributedStore,
    config: &RunConfig,
) -> RunResult {
    // ---- Load phase (untimed; the paper reinstalls and reloads per run).
    let total_records = config.records_per_node * u64::from(config.nodes);
    for seq in 0..total_records {
        store.load(&record_for_seq(seq));
    }
    store.finish_load();

    // ---- Transaction phase.
    let mut generator = WorkloadGenerator::new(config.workload.clone(), total_records, config.seed);
    let connections = match store.connection_cap() {
        Some(cap) => config.client.connections.min(cap),
        None => config.client.connections,
    };
    assert!(connections > 0, "no client connections");
    let warmup_end = engine.now() + SimDuration::from_secs_f64(config.client.warmup_secs);
    let measure_end = warmup_end + SimDuration::from_secs_f64(config.client.measure_secs);
    let issue_interval = config
        .client
        .issue_interval_secs()
        .map(SimDuration::from_secs_f64);

    let mut slots: Vec<ClientSlot> = (0..connections)
        .map(|_| ClientSlot {
            kind: OpKind::Read,
            ok: true,
            missing: false,
            next_issue: engine.now(),
        })
        .collect();
    let mut stats = BenchStats::new();
    let mut sampler = config
        .telemetry_window_secs
        .map(|secs| TelemetrySampler::new(engine, secs, warmup_end));
    let mut issued: u64 = 0;
    let start = engine.now();

    // Arm the fault schedule: one zero-cost sentinel plan per event, so
    // transitions fire at exact simulated times inside the event loop.
    for (index, event) in config.faults.events().iter().enumerate() {
        let at = warmup_end + SimDuration::from_nanos(event.at.as_nanos());
        if at < measure_end {
            engine.submit_at(
                at.max(engine.now()),
                Plan::empty(),
                fault_token(index as u64),
            );
        }
    }

    // Prime every connection. Under throttling, stagger the first issues
    // across one interval so the target rate is smooth.
    for client in 0..connections {
        let at = match issue_interval {
            Some(interval) => {
                start
                    + SimDuration::from_nanos(
                        interval.as_nanos() * u64::from(client) / u64::from(connections),
                    )
            }
            None => start,
        };
        slots[client as usize].next_issue = at;
        issue_op(
            engine,
            store,
            &mut generator,
            &mut slots,
            client,
            at,
            config.op_deadline,
            &mut issued,
        );
    }

    let mut event_at = config
        .event_at_secs
        .map(|secs| warmup_end + SimDuration::from_secs_f64(secs));

    // Event loop: consume completions, reissue, stop at the window end.
    while let Some(completion) = engine.next_completion() {
        let now = completion.finished;
        if let Some(sampler) = sampler.as_mut() {
            sampler.advance_to(engine, now.min(measure_end));
        }
        if now > measure_end {
            break;
        }
        if let Some(at) = event_at {
            if now >= at {
                event_at = None;
                store.on_timed_event(engine);
            }
        }
        let (is_fault, fault_index) = split_fault_token(completion.token);
        if is_fault {
            let event = config.faults.events()[fault_index as usize];
            store.on_fault(&event, engine);
            continue;
        }
        let (is_background, id) = split_token(completion.token);
        if is_background {
            store.on_background(id, engine);
            continue;
        }
        let client = id as u32;
        let slot = &slots[client as usize];
        let failed = !completion.outcome.is_ok();
        if now > warmup_end {
            let offset_ns = now.since(warmup_end).as_nanos();
            if failed || slot.missing {
                // Kernel-level failure (node down, timeout) or lost data.
                stats.record_error(slot.kind, offset_ns);
                if let Some(sampler) = sampler.as_mut() {
                    sampler.telemetry.record_error(offset_ns);
                }
            } else {
                if slot.ok {
                    stats.record(slot.kind, completion.latency().as_nanos());
                    if let Some(sampler) = sampler.as_mut() {
                        sampler
                            .telemetry
                            .record(offset_ns, completion.latency().as_nanos());
                    }
                } else {
                    stats.record_rejection(slot.kind);
                }
                stats.record_timeline(offset_ns);
            }
        }
        if slot.kind == OpKind::Insert && slot.ok && !failed {
            generator.ack_insert();
        }
        // Schedule the next op for this connection.
        let at = match issue_interval {
            Some(interval) => {
                let scheduled = slots[client as usize].next_issue + interval;
                slots[client as usize].next_issue = if scheduled >= now { scheduled } else { now };
                slots[client as usize].next_issue
            }
            None => now,
        };
        if at < measure_end {
            issue_op(
                engine,
                store,
                &mut generator,
                &mut slots,
                client,
                at,
                config.op_deadline,
                &mut issued,
            );
        }
    }

    stats.set_window_ns(measure_end.since(warmup_end).as_nanos());
    // Flush the final boundary (the loop stops at the first completion
    // past the window, which may itself lie beyond it).
    if let Some(sampler) = sampler.as_mut() {
        sampler.advance_to(engine, measure_end);
    }
    RunResult {
        stats,
        issued,
        disk_bytes_per_node: store.disk_bytes_per_node(),
        telemetry: sampler.map(|s| s.telemetry),
    }
}

#[allow(clippy::too_many_arguments)]
fn issue_op(
    engine: &mut Engine,
    store: &mut dyn DistributedStore,
    generator: &mut WorkloadGenerator,
    slots: &mut [ClientSlot],
    client: u32,
    at: SimTime,
    deadline: Option<SimDuration>,
    issued: &mut u64,
) {
    let op = generator.next_op();
    let (outcome, plan) = store.plan_op(client, &op, engine);
    *issued += 1;
    slots[client as usize].kind = op.kind();
    slots[client as usize].ok = !matches!(outcome, OpOutcome::Rejected(_));
    slots[client as usize].missing = matches!(outcome, OpOutcome::Missing);
    let start = at.max(engine.now());
    let token = Token(u64::from(client));
    match deadline {
        Some(deadline) => engine.submit_at_with_deadline(start, plan, token, deadline),
        None => engine.submit_at(start, plan, token),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{round_trip_plan, StoreCtx};
    use apm_core::driver::Throttle;
    use apm_core::ops::Operation;
    use apm_core::record::Record;
    use apm_sim::{ClusterSpec, Plan};
    use std::collections::BTreeMap;

    /// A minimal in-memory store with a fixed CPU cost, for driver tests.
    struct FixtureStore {
        ctx: StoreCtx,
        data: BTreeMap<apm_core::record::MetricKey, Record>,
        cpu_us: u64,
    }

    impl FixtureStore {
        fn new(engine: &mut Engine, cpu_us: u64) -> FixtureStore {
            let ctx = StoreCtx::new(engine, ClusterSpec::cluster_m(), 1, 1, 0.1, 3);
            FixtureStore {
                ctx,
                data: BTreeMap::new(),
                cpu_us,
            }
        }
    }

    impl DistributedStore for FixtureStore {
        fn name(&self) -> &'static str {
            "fixture"
        }

        fn ctx(&self) -> &StoreCtx {
            &self.ctx
        }

        fn load(&mut self, record: &Record) {
            self.data.insert(record.key, *record);
        }

        fn plan_op(
            &mut self,
            client: u32,
            op: &Operation,
            _engine: &mut Engine,
        ) -> (OpOutcome, Plan) {
            let outcome = match op {
                Operation::Read { key } => match self.data.get(key) {
                    Some(r) => OpOutcome::Found(*r),
                    None => OpOutcome::Missing,
                },
                Operation::Insert { record } | Operation::Update { record } => {
                    self.data.insert(record.key, *record);
                    OpOutcome::Done
                }
                Operation::Scan { .. } => OpOutcome::Scanned(0),
            };
            let server = self.ctx.servers[0];
            let plan = round_trip_plan(
                &self.ctx,
                client,
                &server,
                SimDuration::from_micros(5),
                100,
                175,
                vec![apm_sim::Step::Acquire {
                    resource: server.cpu,
                    service: SimDuration::from_micros(self.cpu_us),
                }],
            );
            (outcome, plan)
        }

        fn disk_bytes_per_node(&self) -> Option<u64> {
            None
        }
    }

    fn quick_config(workload: Workload) -> RunConfig {
        RunConfig {
            workload,
            client: ClientConfig::cluster_m(1).with_window(0.5, 2.0),
            records_per_node: 1_000,
            nodes: 1,
            seed: 42,
            event_at_secs: None,
            faults: FaultSchedule::none(),
            op_deadline: None,
            telemetry_window_secs: None,
        }
    }

    #[test]
    fn max_throughput_run_saturates_the_cpu_pool() {
        let mut engine = Engine::new();
        let mut store = FixtureStore::new(&mut engine, 100);
        let result = run_benchmark(&mut engine, &mut store, &quick_config(Workload::r()));
        // 8 cores at 100us/op → theoretical 80K ops/s; expect >60% of it.
        let throughput = result.throughput();
        assert!(throughput > 48_000.0, "throughput too low: {throughput}");
        assert!(
            throughput < 85_000.0,
            "throughput above physical limit: {throughput}"
        );
        // Closed loop, 128 conns: latency ≈ conns/throughput (Little's law).
        let little = 128.0 / throughput * 1_000.0;
        let read_ms = result
            .mean_latency_ms(OpKind::Read)
            .expect("reads measured");
        assert!(
            (read_ms - little).abs() / little < 0.35,
            "read {read_ms} ms vs little {little} ms"
        );
    }

    #[test]
    fn bounded_throughput_tracks_target_and_lowers_latency() {
        let mut engine = Engine::new();
        let mut store = FixtureStore::new(&mut engine, 100);
        let max = run_benchmark(&mut engine, &mut store, &quick_config(Workload::r()));
        let max_lat = max.mean_latency_ms(OpKind::Read).unwrap();

        let mut engine2 = Engine::new();
        let mut store2 = FixtureStore::new(&mut engine2, 100);
        let mut cfg = quick_config(Workload::r());
        let target = max.throughput() * 0.5;
        cfg.client = cfg.client.with_throttle(Throttle::TargetOps(target));
        let half = run_benchmark(&mut engine2, &mut store2, &cfg);
        assert!(
            (half.throughput() - target).abs() / target < 0.1,
            "bounded run off target: {} vs {}",
            half.throughput(),
            target
        );
        let half_lat = half.mean_latency_ms(OpKind::Read).unwrap();
        assert!(
            half_lat < max_lat / 2.0,
            "uncongested latency should collapse: {half_lat} vs {max_lat}"
        );
    }

    #[test]
    fn workload_mix_is_respected_in_measured_ops() {
        let mut engine = Engine::new();
        let mut store = FixtureStore::new(&mut engine, 50);
        let result = run_benchmark(&mut engine, &mut store, &quick_config(Workload::rw()));
        let reads = result.stats.ops(OpKind::Read) as f64;
        let inserts = result.stats.ops(OpKind::Insert) as f64;
        let ratio = reads / (reads + inserts);
        assert!(
            (ratio - 0.5).abs() < 0.05,
            "RW should be half reads: {ratio}"
        );
    }

    #[test]
    fn run_is_deterministic() {
        let run = || {
            let mut engine = Engine::new();
            let mut store = FixtureStore::new(&mut engine, 100);
            let r = run_benchmark(&mut engine, &mut store, &quick_config(Workload::rw()));
            (r.stats.total_ops(), r.issued)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn crash_window_shows_up_as_errors_then_recovery() {
        let mut engine = Engine::new();
        let mut store = FixtureStore::new(&mut engine, 100);
        let mut cfg = quick_config(Workload::r());
        // Crash the only node 0.4 s into the 2 s window, restart at 0.9 s
        // (failure tails complete within the same one-second bucket).
        cfg.faults = FaultSchedule::none().crash(0, SimTime(400_000_000), SimTime(900_000_000));
        let result = run_benchmark(&mut engine, &mut store, &cfg);
        assert!(result.stats.total_errors() > 0, "crash produced no errors");
        assert!(result.stats.availability() < 1.0);
        assert!(
            result.stats.availability() > 0.2,
            "errors are cheap; most ops still land"
        );
        // The post-restart second throughputs like the pre-fault one.
        let timeline = result.stats.timeline();
        assert!(timeline.len() >= 2);
        let last = *timeline.last().unwrap() as f64;
        assert!(last > 0.6 * timeline[0] as f64, "no recovery: {timeline:?}");
        // Errors concentrate in the crash window (second 0 of the
        // timeline covers 0-1 s, where the whole outage and its 500 us
        // completion tail sit).
        let errors = result.stats.error_timeline();
        assert!(errors[0] > 0, "outage second shows no errors: {errors:?}");
        assert!(
            errors.iter().skip(1).all(|&e| e == 0),
            "errors after restart: {errors:?}"
        );
    }

    #[test]
    fn runs_are_deterministic_under_faults() {
        let run = || {
            let mut engine = Engine::new();
            let mut store = FixtureStore::new(&mut engine, 100);
            let mut cfg = quick_config(Workload::rw());
            cfg.faults = FaultSchedule::none()
                .crash(0, SimTime(300_000_000), SimTime(700_000_000))
                .slow_disk(0, SimTime(1_000_000_000), SimTime(1_500_000_000), 4);
            cfg.op_deadline = Some(SimDuration::from_millis(250));
            let r = run_benchmark(&mut engine, &mut store, &cfg);
            (
                r.stats.total_ops(),
                r.stats.total_errors(),
                r.issued,
                r.stats.timeline().to_vec(),
                r.stats.error_timeline().to_vec(),
            )
        };
        // Same seed + same fault schedule ⇒ byte-identical sequences,
        // asserted twice to catch flaky hidden state.
        let (a, b, c) = (run(), run(), run());
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn server_resource_class_splits_servers_from_clients() {
        assert_eq!(server_resource_class("node3.cpu"), Some("cpu"));
        assert_eq!(server_resource_class("node0.disk"), Some("disk"));
        assert_eq!(server_resource_class("node11.nic"), Some("net"));
        assert_eq!(server_resource_class("client0.cpu"), None);
        assert_eq!(server_resource_class("client4.nic"), None);
        assert_eq!(server_resource_class("coordinator"), None);
        // Software serialisation stages count as server compute.
        assert_eq!(server_resource_class("redis2.eventloop"), Some("cpu"));
        assert_eq!(server_resource_class("mongod0.writelock"), Some("cpu"));
        assert_eq!(server_resource_class("datanode1.xceiver"), Some("cpu"));
        assert_eq!(server_resource_class("voltdb.site3"), Some("cpu"));
        assert_eq!(server_resource_class("voltdb.initiator"), Some("cpu"));
    }

    #[test]
    fn telemetry_records_windows_with_consistent_quantiles() {
        let mut engine = Engine::new();
        let mut store = FixtureStore::new(&mut engine, 100);
        let mut cfg = quick_config(Workload::r());
        cfg.telemetry_window_secs = Some(0.5);
        let result = run_benchmark(&mut engine, &mut store, &cfg);
        let telemetry = result.telemetry.expect("telemetry requested");
        // 2 s measurement window at 0.5 s per window → 4 full windows.
        assert_eq!(telemetry.windows().len(), 4);
        let total: u64 = telemetry.windows().iter().map(|w| w.ops()).sum();
        assert_eq!(total, result.stats.total_ops(), "every measured op lands");
        for w in telemetry.windows() {
            assert!(w.ops() > 0, "saturated loop fills every window");
            assert!(w.quantile_latency_ms(0.99) >= w.quantile_latency_ms(0.95));
            assert!(w.quantile_latency_ms(0.95) >= w.quantile_latency_ms(0.50));
            let cpu = w.resource("cpu").expect("server cpu sampled");
            assert!(
                cpu.utilization > 0.5 && cpu.utilization < 1.2,
                "cpu-bound fixture should saturate: {}",
                cpu.utilization
            );
            assert!(cpu.queue_depth >= 0.0);
        }
        // The fixture plan touches no server disk: zero utilisation.
        let disk = telemetry.windows()[0].resource("disk").expect("sampled");
        assert_eq!(disk.utilization, 0.0);
    }

    #[test]
    fn telemetry_is_deterministic_and_off_by_default() {
        let run = || {
            let mut engine = Engine::new();
            let mut store = FixtureStore::new(&mut engine, 100);
            let mut cfg = quick_config(Workload::rw());
            cfg.telemetry_window_secs = Some(0.5);
            let r = run_benchmark(&mut engine, &mut store, &cfg);
            let t = r.telemetry.unwrap();
            let shape: Vec<(u64, u64, u64)> = t
                .windows()
                .iter()
                .map(|w| (w.ops(), w.errors(), w.latency().max()))
                .collect();
            let utils: Vec<u64> = t
                .windows()
                .iter()
                .map(|w| w.resource("cpu").unwrap().utilization.to_bits())
                .collect();
            (shape, utils)
        };
        assert_eq!(run(), run());

        let mut engine = Engine::new();
        let mut store = FixtureStore::new(&mut engine, 100);
        let r = run_benchmark(&mut engine, &mut store, &quick_config(Workload::r()));
        assert!(r.telemetry.is_none(), "telemetry must be opt-in");
    }

    #[test]
    fn reads_never_miss() {
        // The generator only reads acked records; a miss means the driver
        // acked too early or the store lost data.
        let mut engine = Engine::new();
        let mut store = FixtureStore::new(&mut engine, 20);
        let result = run_benchmark(&mut engine, &mut store, &quick_config(Workload::rw()));
        assert_eq!(result.stats.total_rejected(), 0);
        // Missing reads would have been recorded as rejections via
        // OpOutcome::Missing only if the fixture returned them — assert
        // the fixture found every key by checking ok-flags stayed true.
        assert!(result.stats.ops(OpKind::Read) > 0);
    }
}
