//! OS page-cache model for the LSM stores.
//!
//! Cassandra, HBase and Voldemort lean on the OS page cache (or an
//! internal block cache) for reads. On Cluster M the per-node data set
//! (≈2.5–7.5 GB on disk) fits in 16 GB RAM, so reads rarely touch disk —
//! the cluster is *memory-bound* (§3). On Cluster D the data exceeds the
//! 4 GB of RAM and a fraction of reads miss to disk — the *disk-bound*
//! regime of §5.8, where latencies jump to tens of milliseconds.
//!
//! The model: with `data` bytes of cold data competing for `capacity`
//! cache bytes, a uniformly-random read hits with probability
//! `min(1, capacity / data)`. Sampling uses a seeded deterministic stream
//! so runs are repeatable.

use apm_core::keyspace::SplitRng;
use apm_core::snap::{SnapError, SnapReader, SnapWriter};
use apm_storage::receipt::DiskIo;

/// Per-node page cache model.
#[derive(Clone, Debug)]
pub struct PageCache {
    /// Construction-time config; not part of the snapshot stream.
    capacity_bytes: u64, // audit:allow(snap-drift)
    rng: SplitRng,
}

impl PageCache {
    /// Creates a cache with `capacity_bytes` available for data pages.
    pub fn new(capacity_bytes: u64, seed: u64) -> PageCache {
        PageCache {
            capacity_bytes,
            rng: SplitRng::new(seed),
        }
    }

    /// Cache capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity_bytes
    }

    /// Hit probability when `data_bytes` of uniformly-accessed data
    /// compete for the cache.
    pub fn hit_probability(&self, data_bytes: u64) -> f64 {
        if data_bytes == 0 {
            1.0
        } else {
            (self.capacity_bytes as f64 / data_bytes as f64).min(1.0)
        }
    }

    /// Samples whether one access hits the cache.
    pub fn sample_hit(&mut self, data_bytes: u64) -> bool {
        let p = self.hit_probability(data_bytes);
        p >= 1.0 || self.rng.next_f64() < p
    }

    /// Serializes the sampling stream (the capacity is re-supplied at
    /// construction).
    pub fn snap_state(&self, w: &mut SnapWriter) {
        w.put(&self.rng);
    }

    /// Restores the stream written by [`PageCache::snap_state`] into a
    /// cache built with the same capacity.
    pub fn restore_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.rng = r.get()?;
        Ok(())
    }

    /// Filters a receipt's I/O list: cacheable reads are dropped when they
    /// hit; writes and uncacheable accesses always survive. Returns the
    /// accesses that actually reach the disk.
    pub fn filter_ios(&mut self, ios: &[DiskIo], data_bytes: u64) -> Vec<DiskIo> {
        ios.iter()
            .filter(|io| !(io.cacheable && io.class.is_read() && self.sample_hit(data_bytes)))
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apm_storage::receipt::DiskIo;

    #[test]
    fn small_data_always_hits() {
        let mut cache = PageCache::new(1 << 30, 1);
        assert_eq!(cache.hit_probability(1 << 20), 1.0);
        assert!((0..100).all(|_| cache.sample_hit(1 << 20)));
    }

    #[test]
    fn oversized_data_hits_proportionally() {
        let mut cache = PageCache::new(1 << 30, 1);
        let data = 4u64 << 30; // 4x the cache → 25% hits
        let hits = (0..10_000).filter(|_| cache.sample_hit(data)).count();
        assert!(
            (2_000..3_000).contains(&hits),
            "expected ~2500 hits, got {hits}"
        );
    }

    #[test]
    fn filter_keeps_writes_and_uncacheable() {
        let mut cache = PageCache::new(u64::MAX, 1); // everything hits
        let ios = vec![
            DiskIo::random_read(4096),
            DiskIo::seq_write(100),
            DiskIo::random_write(4096),
        ];
        let surviving = cache.filter_ios(&ios, 1 << 30);
        assert_eq!(surviving.len(), 2, "reads hit, writes must survive");
        assert!(surviving.iter().all(|io| !io.class.is_read()));
    }

    #[test]
    fn filter_passes_reads_when_cache_is_cold() {
        let mut cache = PageCache::new(1, 1); // effectively no cache
        let ios = vec![DiskIo::random_read(4096), DiskIo::random_read(4096)];
        let surviving = cache.filter_ios(&ios, 1 << 30);
        assert_eq!(surviving.len(), 2);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut a = PageCache::new(1 << 30, 9);
        let mut b = PageCache::new(1 << 30, 9);
        let data = 3u64 << 30;
        for _ in 0..100 {
            assert_eq!(a.sample_hit(data), b.sample_hit(data));
        }
    }
}
