//! The HBase-like store: region servers over HDFS.
//!
//! §4.1: HBase runs region servers that own contiguous key ranges and
//! persist everything through HDFS. Architecture mirrored here:
//!
//! * a [`RegionMap`] routes keys by range (regions interleaved across
//!   servers);
//! * each server runs a real LSM engine (memstore → HFiles, the same
//!   substrate as the Cassandra store);
//! * *all* file I/O goes through the [`Hdfs`] layer — in 0.90 there were
//!   no short-circuit reads, so even local block reads pay the DataNode
//!   stream overhead on a small xceiver pool. That is the store's
//!   signature: the worst read latency and the lowest single-node
//!   throughput of the field (≈2.5 K ops/s, Fig 3) while writes are the
//!   *fastest* (deferred WAL: the edit is acknowledged from the memstore,
//!   Fig 5), and write-heavy workloads nearly double throughput (§5.3).
//! * flushes and compactions are pipeline writes with 3× replication,
//!   which is also why HBase is the least disk-efficient store (Fig 17).

use crate::api::{background_token, round_trip_plan, CostModel, DistributedStore, StoreCtx};
use crate::cache::PageCache;
use crate::hdfs::{Hdfs, HdfsConfig};
use crate::routing::RegionMap;
use apm_core::ops::{OpOutcome, Operation};
use apm_core::record::Record;
use apm_core::snap::{SnapError, SnapReader, SnapWriter};
use apm_sim::{Engine, Plan, SimDuration, Step};
use apm_storage::encoding::{hbase_format, StorageFormat};
use apm_storage::lsm::{BackgroundJob, JobKind, LsmConfig, LsmTree};
use apm_storage::wal::{CommitLog, SyncPolicy};
use std::collections::BTreeMap;

/// Read path CPU (RPC, memstore + block lookup) — cheap; the latency is
/// in HDFS.
const READ_COST: CostModel = CostModel {
    base_ns: 260_000,
    per_probe_ns: 10_000,
    per_byte_ns: 30,
};
/// Write path CPU: building KeyValues (one per field!), CSLM insert, WAL
/// edit. HBase 0.90's write path was heavyweight — calibrated to ≈10 K
/// inserts/s on one 8-core node (Fig 9).
const WRITE_COST: CostModel = CostModel {
    base_ns: 700_000,
    per_probe_ns: 10_000,
    per_byte_ns: 40,
};
/// Scan fragment cost (sequential next() calls on the region scanner).
const SCAN_COST: CostModel = CostModel {
    base_ns: 900_000,
    per_probe_ns: 10_000,
    per_byte_ns: 30,
};
/// Client (HTable) cost per op.
const CLIENT_CPU: SimDuration = SimDuration::from_micros(25);
/// Page-cache share of RAM on the DataNodes (rest is the two JVMs).
const PAGE_CACHE_FRACTION: f64 = 0.5;
/// Regions per server (pre-split steady state).
const REGIONS_PER_SERVER: usize = 4;
/// Wire sizes.
const REQ_BYTES: u64 = 150;
const RESP_READ_BYTES: u64 = 260;
const RESP_WRITE_BYTES: u64 = 40;
/// Master failure-detection delay before a dead server's regions are
/// reassigned (ZooKeeper session timeout + master processing, scaled
/// down from the production 30–180 s defaults to stay observable in
/// short simulated windows).
const DETECTION_DELAY: SimDuration = SimDuration::from_millis(1_000);
/// Floor on WAL-replay bytes (region-open overhead + meta edits) so a
/// crash is never free even with an empty deferred-WAL backlog.
const MIN_REPLAY_BYTES: u64 = 1 << 20;

struct Server {
    lsm: LsmTree,
    wal: CommitLog,
    cache: PageCache,
}

/// The store.
pub struct HbaseStore {
    // Construction-time config/topology below; not part of the snapshot
    // stream (region layout and the HDFS model are static for a run).
    ctx: StoreCtx,         // audit:allow(snap-drift)
    regions: RegionMap,    // audit:allow(snap-drift)
    hdfs: Hdfs,            // audit:allow(snap-drift)
    format: StorageFormat, // audit:allow(snap-drift)
    servers_state: Vec<Server>,
    jobs: BTreeMap<u64, (usize, BackgroundJob)>,
    next_job: u64,
    /// Pending deferred-WAL bytes per server (flushed with memstores).
    wal_backlog: Vec<u64>,
    /// Block-cache budget per server (kept to rebuild a cold cache after
    /// a crash). Construction-time config.
    cache_bytes: u64, // audit:allow(snap-drift)
    /// Crashed region servers (no requests served until reassignment).
    down: Vec<bool>,
    /// Regions of a dead server re-opened on a substitute: dead → host.
    /// The data lives in HDFS, so the substitute serves it with its own
    /// CPU/disk/NIC once WAL replay finishes.
    reassigned: BTreeMap<usize, usize>,
    /// In-flight master-recovery jobs (detection + WAL replay): job id →
    /// dead server.
    recovery_jobs: BTreeMap<u64, usize>,
}

impl HbaseStore {
    /// Creates the store.
    pub fn new(ctx: StoreCtx, engine: &mut Engine) -> HbaseStore {
        let flush_bytes = (((64u64 << 20) as f64 * ctx.scale) as u64).max(64 << 10);
        let cache_bytes = (ctx.scaled_ram() as f64 * PAGE_CACHE_FRACTION) as u64;
        let n = ctx.node_count();
        let servers_state = (0..n)
            .map(|i| Server {
                lsm: LsmTree::new(LsmConfig {
                    memtable_flush_bytes: flush_bytes,
                    ..LsmConfig::default()
                }),
                wal: CommitLog::new(SyncPolicy::Deferred, 40),
                cache: PageCache::new(cache_bytes, ctx.seed ^ ((i as u64) << 16)),
            })
            .collect();
        let hdfs = Hdfs::new(engine, &ctx, HdfsConfig::default());
        HbaseStore {
            regions: RegionMap::new(n, REGIONS_PER_SERVER),
            hdfs,
            format: hbase_format(),
            servers_state,
            jobs: BTreeMap::new(),
            next_job: 1,
            wal_backlog: vec![0; n],
            cache_bytes,
            down: vec![false; n],
            reassigned: BTreeMap::new(),
            recovery_jobs: BTreeMap::new(),
            ctx,
        }
    }

    /// Which live server hosts `server`'s regions right now: itself when
    /// up, its substitute after reassignment, nobody while the master is
    /// still detecting the crash or replaying the WAL.
    fn host_for(&self, server: usize) -> Option<usize> {
        if !self.down[server] {
            return Some(server);
        }
        self.reassigned
            .get(&server)
            .copied()
            .filter(|&h| !self.down[h])
    }

    fn expand(&self, bytes: u64) -> u64 {
        (bytes as f64 * self.format.expansion()).round() as u64
    }

    /// A request to a region whose server is dead and not yet reassigned:
    /// it dies with a connection-refused error and no store-state side
    /// effects. The abort is unconditional (Step::Fail) because the
    /// refusal was decided at routing time — the server restarting before
    /// the plan executes must not turn it into a phantom success.
    fn dead_region_plan(&self, client: u32, server: usize) -> Plan {
        let res = self.ctx.servers[server];
        round_trip_plan(
            &self.ctx,
            client,
            &res,
            CLIENT_CPU,
            REQ_BYTES,
            RESP_WRITE_BYTES,
            vec![Step::Fail {
                latency: apm_sim::fault::CRASH_ERROR_LATENCY,
            }],
        )
    }

    fn schedule_job(&mut self, server: usize, job: BackgroundJob, engine: &mut Engine) {
        let id = self.next_job;
        self.next_job += 1;
        // Background work for a dead server's regions runs on whichever
        // node re-opened them (the job stays keyed by the region owner).
        let host = self.host_for(server).unwrap_or(server);
        let mut plan_steps: Vec<Step> = Vec::new();
        // Compaction first streams its inputs back in from HDFS.
        if job.read_bytes > 0 {
            plan_steps.extend(self.hdfs.read_steps(
                &self.ctx,
                host,
                self.expand(job.read_bytes),
                true, // compaction inputs are usually warm
            ));
        }
        plan_steps.push(Step::Acquire {
            resource: self.ctx.servers[host].cpu,
            service: SimDuration::from_nanos(self.expand(job.write_bytes) * 10),
        });
        // Flush/compaction output is pipeline-written with replication;
        // piggy-back the deferred WAL backlog on the same sync.
        let wal_bytes = std::mem::take(&mut self.wal_backlog[server]);
        let write = self
            .hdfs
            .write_plan(&self.ctx, host, self.expand(job.write_bytes) + wal_bytes);
        plan_steps.extend(write.0);
        self.jobs.insert(id, (server, job));
        engine.submit(Plan(plan_steps), background_token(id));
    }
}

impl DistributedStore for HbaseStore {
    fn name(&self) -> &'static str {
        "hbase"
    }

    fn ctx(&self) -> &StoreCtx {
        &self.ctx
    }

    fn load(&mut self, record: &Record) {
        let server = self.regions.route(&record.key);
        let (_, job) = self.servers_state[server]
            .lsm
            .insert(record.key, record.fields);
        let mut next = job;
        while let Some(j) = next {
            next = match j.kind {
                JobKind::Flush => self.servers_state[server].lsm.complete_flush(j.id),
                JobKind::Compaction => self.servers_state[server].lsm.complete_compaction(j.id),
            };
        }
    }

    fn finish_load(&mut self) {
        for server in &mut self.servers_state {
            let mut next = server.lsm.force_flush();
            while let Some(j) = next {
                next = match j.kind {
                    JobKind::Flush => server.lsm.complete_flush(j.id),
                    JobKind::Compaction => server.lsm.complete_compaction(j.id),
                };
            }
        }
    }

    fn plan_op(&mut self, client: u32, op: &Operation, engine: &mut Engine) -> (OpOutcome, Plan) {
        match op {
            Operation::Read { key } => {
                let server = self.regions.route(key);
                let Some(host) = self.host_for(server) else {
                    return (OpOutcome::Missing, self.dead_region_plan(client, server));
                };
                let state = &mut self.servers_state[server];
                let (found, receipt) = state.lsm.get(key);
                let data_bytes = self.format.disk_usage(state.lsm.record_count());
                let outcome = match found {
                    Some(fields) => OpOutcome::Found(Record { key: *key, fields }),
                    None => OpOutcome::Missing,
                };
                // Every HFile block consulted goes through the DataNode.
                let mut steps = vec![Step::Acquire {
                    resource: self.ctx.servers[host].cpu,
                    service: READ_COST.cpu(&receipt),
                }];
                for io in &receipt.io {
                    let cached = self.servers_state[host].cache.sample_hit(data_bytes);
                    steps.extend(self.hdfs.read_steps(&self.ctx, host, io.bytes, cached));
                }
                let plan = round_trip_plan(
                    &self.ctx,
                    client,
                    &self.ctx.servers[host],
                    CLIENT_CPU,
                    REQ_BYTES,
                    RESP_READ_BYTES,
                    steps,
                );
                (outcome, plan)
            }
            Operation::Insert { record } | Operation::Update { record } => {
                let server = self.regions.route(&record.key);
                let Some(host) = self.host_for(server) else {
                    return (OpOutcome::Done, self.dead_region_plan(client, server));
                };
                let (receipt, flush) = self.servers_state[server]
                    .lsm
                    .insert(record.key, record.fields);
                let wal = self.servers_state[server].wal.append(75 * 5); // one WALEdit per KeyValue
                debug_assert!(wal.io.is_none(), "deferred WAL");
                self.wal_backlog[server] += self.servers_state[server].wal.take_unflushed();
                let steps = vec![Step::Acquire {
                    resource: self.ctx.servers[host].cpu,
                    service: WRITE_COST.cpu(&receipt),
                }];
                let plan = round_trip_plan(
                    &self.ctx,
                    client,
                    &self.ctx.servers[host],
                    CLIENT_CPU,
                    REQ_BYTES,
                    RESP_WRITE_BYTES,
                    steps,
                );
                if let Some(job) = flush {
                    self.schedule_job(server, job, engine);
                }
                (OpOutcome::Done, plan)
            }
            Operation::Scan { start, len } => {
                let server = *self
                    .regions
                    .scan_route(start, *len)
                    .first()
                    .expect("scan has a home region");
                let Some(host) = self.host_for(server) else {
                    return (OpOutcome::Scanned(0), self.dead_region_plan(client, server));
                };
                let state = &mut self.servers_state[server];
                let (rows, receipt) = state.lsm.scan(start, *len);
                let data_bytes = self.format.disk_usage(state.lsm.record_count());
                let mut steps = vec![Step::Acquire {
                    resource: self.ctx.servers[host].cpu,
                    service: SCAN_COST.cpu(&receipt),
                }];
                for io in &receipt.io {
                    let cached = self.servers_state[host].cache.sample_hit(data_bytes);
                    steps.extend(self.hdfs.read_steps(&self.ctx, host, io.bytes, cached));
                }
                let resp = RESP_READ_BYTES * rows.len().max(1) as u64 / 2;
                let plan = round_trip_plan(
                    &self.ctx,
                    client,
                    &self.ctx.servers[host],
                    CLIENT_CPU,
                    REQ_BYTES,
                    resp,
                    steps,
                );
                (OpOutcome::Scanned(rows.len()), plan)
            }
        }
    }

    fn on_fault(&mut self, event: &apm_sim::FaultEvent, engine: &mut Engine) {
        crate::api::apply_node_fault(&self.ctx, engine, event);
        if event.node >= self.servers_state.len() {
            return;
        }
        match event.kind {
            apm_sim::FaultKind::Crash => {
                let dead = event.node;
                self.down[dead] = true;
                // The process is gone: block cache restarts cold.
                self.servers_state[dead].cache =
                    PageCache::new(self.cache_bytes, self.ctx.seed ^ ((dead as u64) << 16));
                let sub = (dead + 1) % self.servers_state.len();
                if sub != dead && !self.down[sub] {
                    // Master recovery: wait out failure detection, then
                    // the substitute splits and replays the dead server's
                    // WAL from HDFS before re-opening its regions. Until
                    // this job completes, the regions serve nothing.
                    let backlog = std::mem::take(&mut self.wal_backlog[dead]);
                    let replay = self.expand(backlog) + MIN_REPLAY_BYTES;
                    let id = self.next_job;
                    self.next_job += 1;
                    let mut steps = vec![Step::Delay(DETECTION_DELAY)];
                    steps.extend(self.hdfs.read_steps(&self.ctx, sub, replay, false));
                    steps.push(Step::Acquire {
                        resource: self.ctx.servers[sub].cpu,
                        service: SimDuration::from_nanos(replay * 10),
                    });
                    self.recovery_jobs.insert(id, dead);
                    engine.submit(Plan(steps), background_token(id));
                }
            }
            apm_sim::FaultKind::Restart => {
                // The server rejoins and the master moves its regions
                // back (a cheap reopen — the data never left HDFS).
                self.down[event.node] = false;
                self.reassigned.remove(&event.node);
                #[cfg(feature = "audit")]
                crate::audit::assert_region_reassignment_bijection(&self.reassigned, &self.down);
            }
            // Slowdowns and partitions are applied uniformly by
            // `apply_node_fault`; no HBase-specific bookkeeping.
            apm_sim::FaultKind::DiskSlow { .. }
            | apm_sim::FaultKind::DiskRestore
            | apm_sim::FaultKind::PartitionStart
            | apm_sim::FaultKind::PartitionEnd
            | apm_sim::FaultKind::FailSlow { .. }
            | apm_sim::FaultKind::FailSlowEnd => {}
        }
    }

    fn on_background(&mut self, job_id: u64, engine: &mut Engine) {
        if let Some(dead) = self.recovery_jobs.remove(&job_id) {
            // WAL replay finished: the substitute re-opens the regions —
            // unless the dead server already restarted in the meantime.
            if self.down[dead] {
                let sub = (dead + 1) % self.servers_state.len();
                if !self.down[sub] {
                    self.reassigned.insert(dead, sub);
                    #[cfg(feature = "audit")]
                    crate::audit::assert_region_reassignment_bijection(
                        &self.reassigned,
                        &self.down,
                    );
                }
            }
            return;
        }
        let (server, job) = self.jobs.remove(&job_id).expect("known background job");
        let follow = match job.kind {
            JobKind::Flush => self.servers_state[server].lsm.complete_flush(job.id),
            JobKind::Compaction => self.servers_state[server].lsm.complete_compaction(job.id),
        };
        if let Some(next) = follow {
            self.schedule_job(server, next, engine);
        }
    }

    fn disk_bytes_per_node(&self) -> Option<u64> {
        let records: u64 = self
            .servers_state
            .iter()
            .map(|s| s.lsm.record_count())
            .sum();
        Some(self.format.disk_usage(records) / self.servers_state.len() as u64)
    }

    fn snap_state(&self, w: &mut SnapWriter) {
        for server in &self.servers_state {
            server.lsm.snap_state(w);
            server.wal.snap_state(w);
            server.cache.snap_state(w);
        }
        w.put(&self.jobs);
        w.put_u64(self.next_job);
        w.put(&self.wal_backlog);
        w.put(&self.down);
        w.put(&self.reassigned);
        w.put(&self.recovery_jobs);
    }

    fn restore_state(&mut self, r: &mut SnapReader, _engine: &mut Engine) -> Result<(), SnapError> {
        for server in &mut self.servers_state {
            server.lsm.restore_state(r)?;
            server.wal.restore_state(r)?;
            server.cache.restore_state(r)?;
        }
        self.jobs = r.get()?;
        self.next_job = r.u64()?;
        self.wal_backlog = r.get()?;
        self.down = r.get()?;
        self.reassigned = r.get()?;
        self.recovery_jobs = r.get()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_benchmark, RunConfig};
    use apm_core::driver::ClientConfig;
    use apm_core::keyspace::record_for_seq;
    use apm_core::ops::OpKind;
    use apm_core::workload::Workload;
    use apm_sim::{ClusterSpec, FaultSchedule};

    fn make(engine: &mut Engine, nodes: u32, scale: f64) -> HbaseStore {
        let ctx = StoreCtx::new(
            engine,
            ClusterSpec::cluster_m(),
            nodes,
            StoreCtx::standard_client_machines(nodes),
            scale,
            37,
        );
        HbaseStore::new(ctx, engine)
    }

    fn quick_run(nodes: u32, workload: Workload) -> crate::runner::RunResult {
        let mut engine = Engine::new();
        let mut s = make(&mut engine, nodes, 0.01);
        let config = RunConfig {
            workload,
            client: ClientConfig::cluster_m(nodes).with_window(0.5, 3.0),
            records_per_node: 20_000,
            nodes,
            seed: 41,
            event_at_secs: None,
            faults: FaultSchedule::none(),
            op_deadline: None,
            telemetry_window_secs: None,
            resilience: None,
            checkpoints: None,
        };
        run_benchmark(&mut engine, &mut s, &config)
    }

    #[test]
    fn reads_find_loaded_records() {
        let mut engine = Engine::new();
        let mut s = make(&mut engine, 3, 0.01);
        for seq in 0..3_000 {
            s.load(&record_for_seq(seq));
        }
        s.finish_load();
        for seq in (0..3_000).step_by(211) {
            let r = record_for_seq(seq);
            let (outcome, _) = s.plan_op(0, &Operation::Read { key: r.key }, &mut engine);
            assert_eq!(outcome, OpOutcome::Found(r), "seq {seq}");
        }
    }

    #[test]
    fn single_node_read_throughput_is_the_lowest() {
        // Fig 3: "The slowest system in this test on a single node is
        // HBase with 2.5K operations per second."
        let t = quick_run(1, Workload::r()).throughput();
        assert!((1_200.0..6_000.0).contains(&t), "hbase 1-node R: {t}");
    }

    #[test]
    fn read_latency_is_high_and_write_latency_is_low() {
        // Figs 4/5: HBase read latency 50-90 ms; write latency the
        // lowest, well under 2 ms ("clearly trades a read latency for
        // write latency").
        let result = quick_run(1, Workload::r());
        let r = result.mean_latency_ms(OpKind::Read).unwrap();
        let w = result.mean_latency_ms(OpKind::Insert).unwrap();
        assert!(r > 20.0, "hbase read latency too low: {r} ms");
        assert!(
            w < 0.3 * r,
            "hbase writes must be far cheaper than reads: {w} vs {r}"
        );
    }

    #[test]
    fn write_heavy_workloads_increase_throughput() {
        // §5.2/§5.3: RW ≈ +40% over R; W almost 2× RW.
        let r = quick_run(1, Workload::r()).throughput();
        let rw = quick_run(1, Workload::rw()).throughput();
        let w = quick_run(1, Workload::w()).throughput();
        assert!(rw > r * 1.2, "RW must beat R: {r} → {rw}");
        assert!(w > rw * 1.3, "W must beat RW: {rw} → {w}");
    }

    #[test]
    fn throughput_scales_with_region_servers() {
        let one = quick_run(1, Workload::r()).throughput();
        let four = quick_run(4, Workload::r()).throughput();
        let speedup = four / one;
        assert!((2.8..5.2).contains(&speedup), "hbase speedup {speedup:.2}");
    }

    #[test]
    fn background_flushes_replicate_through_hdfs() {
        let mut engine = Engine::new();
        let ctx = StoreCtx::new(&mut engine, ClusterSpec::cluster_m(), 3, 1, 0.001, 37);
        let mut s = HbaseStore::new(ctx, &mut engine);
        // Insert through plan_op until a flush job fires.
        for seq in 0..3_000 {
            let record = record_for_seq(seq);
            let (_, plan) = s.plan_op(0, &Operation::Insert { record }, &mut engine);
            engine.submit(plan, apm_sim::kernel::Token(0));
            while let Some(c) = engine.next_completion() {
                let (bg, id) = crate::api::split_token(c.token);
                if bg {
                    s.on_background(id, &mut engine);
                } else {
                    break;
                }
            }
        }
        engine.run_to_idle();
        while !s.jobs.is_empty() {
            let ids: Vec<u64> = s.jobs.keys().copied().collect();
            for id in ids {
                s.on_background(id, &mut engine);
            }
            engine.run_to_idle();
        }
        let flushed: u64 = s.servers_state.iter().map(|x| x.lsm.stats().flushes).sum();
        assert!(flushed > 0, "no memstore flush happened");
        // Pipeline replication: disks on several nodes saw writes.
        let disks_used = s
            .ctx
            .servers
            .iter()
            .filter(|n| engine.served(n.disk) > 0)
            .count();
        assert!(
            disks_used >= 2,
            "replication pipeline must hit ≥2 nodes: {disks_used}"
        );
    }

    #[test]
    fn crashed_server_regions_reassign_after_wal_replay() {
        use apm_sim::{FaultEvent, FaultKind, SimTime};
        let mut engine = Engine::new();
        let mut s = make(&mut engine, 3, 0.01);
        for seq in 0..3_000 {
            s.load(&record_for_seq(seq));
        }
        s.finish_load();
        s.on_fault(
            &FaultEvent {
                at: SimTime(0),
                node: 1,
                kind: FaultKind::Crash,
            },
            &mut engine,
        );
        // Detection + WAL replay pending: the regions serve nothing.
        assert_eq!(s.host_for(1), None);
        assert!(
            !s.recovery_jobs.is_empty(),
            "crash must start a recovery job"
        );
        // Drain the recovery job.
        while let Some(c) = engine.next_completion() {
            let (bg, id) = crate::api::split_token(c.token);
            if bg {
                s.on_background(id, &mut engine);
            }
        }
        assert_eq!(
            s.host_for(1),
            Some(2),
            "regions must re-open on the substitute"
        );
        assert!(
            engine.now() >= SimTime(DETECTION_DELAY.as_nanos()),
            "reassignment cannot precede failure detection"
        );
        // Every record is still readable (served through node 2).
        for seq in (0..3_000).step_by(173) {
            let r = record_for_seq(seq);
            let (outcome, _) = s.plan_op(0, &Operation::Read { key: r.key }, &mut engine);
            assert_eq!(outcome, OpOutcome::Found(r), "seq {seq} lost in failover");
        }
        // Restart: the regions move home.
        s.on_fault(
            &FaultEvent {
                at: SimTime(0),
                node: 1,
                kind: FaultKind::Restart,
            },
            &mut engine,
        );
        assert_eq!(s.host_for(1), Some(1));
    }

    #[test]
    fn disk_usage_is_the_largest_format() {
        let mut engine = Engine::new();
        let mut s = make(&mut engine, 2, 0.01);
        for seq in 0..10_000 {
            s.load(&record_for_seq(seq));
        }
        s.finish_load();
        let per_node = s.disk_bytes_per_node().unwrap();
        assert_eq!(per_node, hbase_format().disk_usage(5_000));
        assert!(per_node > 9 * 75 * 5_000, "≈10× raw (§5.7)");
    }
}
