//! The sharded-MySQL store: independent InnoDB nodes behind the RDBMS
//! YCSB client's consistent hashing.
//!
//! §4.6: the paper did *not* use MySQL Cluster — it spread "independent
//! single-node servers on each node" and used "the already implemented
//! RDBMS YCSB client which connects to the databases using JDBC and
//! shards the data using a consistent hashing algorithm" (which §5.1
//! found "did a much better sharding than the Jedis library").
//!
//! Mechanisms:
//! * Point ops route to exactly one shard and run against a real
//!   InnoDB-style B+tree through a buffer pool; redo + binlog are group
//!   committed (a few ms write latency, Fig 5/8).
//! * Scans are the weak spot (§5.4: the client's scan "is translated to
//!   a SQL query that retrieves all records with a key equal or greater
//!   than the start key. In the case of MySQL this is inefficient."):
//!   every shard is queried and the client merges — so the per-scan work
//!   is duplicated on *all* n nodes, which is why scan throughput stays
//!   flat as the cluster grows while latency climbs (Figs 12/13).
//! * Under insert-heavy churn (workload RSW) the range query degrades to
//!   a full table scan — modelling the optimizer falling off the index
//!   range path once statistics go stale at high insert rates — which
//!   collapses RSW throughput to tens of ops/s and below one op/s on
//!   larger clusters (§5.5, Fig 14).

use crate::api::{round_trip_plan, server_steps, CostModel, DistributedStore, StoreCtx};
use crate::routing::RdbmsShards;
use apm_core::ops::{OpOutcome, Operation};
use apm_core::record::Record;
use apm_core::snap::{SnapError, SnapReader, SnapWriter};
use apm_sim::{Engine, Plan, SimDuration, SimTime, Step};
use apm_storage::btree::{BTree, BTreeConfig, PageTrace};
use apm_storage::bufferpool::{Access, BufferPool};
use apm_storage::encoding::{mysql_format, StorageFormat};
use apm_storage::receipt::{CostReceipt, DiskIo};
use apm_storage::wal::{CommitLog, SyncPolicy};

/// Point query cost (parse, optimize, index dive, row copy) — calibrated
/// to §5.1: "no significant differences between the throughput of
/// Cassandra and MySQL" (~25 K ops/s on one node).
const POINT_COST: CostModel = CostModel {
    base_ns: 270_000,
    per_probe_ns: 6_000,
    per_byte_ns: 30,
};
/// Insert cost (row build, index insert, redo record, binlog event).
const WRITE_COST: CostModel = CostModel {
    base_ns: 290_000,
    per_probe_ns: 6_000,
    per_byte_ns: 30,
};
/// Healthy indexed range scan fragment per shard.
const SCAN_COST: CostModel = CostModel {
    base_ns: 380_000,
    per_probe_ns: 6_000,
    per_byte_ns: 15,
};
/// CPU per row of a degraded full table scan.
const FULL_SCAN_NS_PER_ROW: u64 = 2_500;
/// Client JDBC cost per statement.
const CLIENT_CPU: SimDuration = SimDuration::from_micros(20);
/// Redo/binlog group-commit window.
const COMMIT_WINDOW: SimDuration = SimDuration::from_millis(1);
/// InnoDB buffer pool share of RAM (§6: "the size of the buffer pool
/// accordingly to the size of the memory").
const BUFFER_POOL_FRACTION: f64 = 0.75;
/// Per-shard insert rate (ops/s) beyond which the optimizer's statistics
/// churn makes the range scan degrade to a full table scan. Workload RSW
/// (50 % inserts) crosses it; RS (6 % inserts) does not. Hysteresis: the
/// degradation persists until inserts almost stop (stale statistics stay
/// stale while the table keeps changing).
const STATS_CHURN_ON: f64 = 2_000.0;

/// InnoDB page layout: ~250 B effective per record (Fig 17's data file
/// half of the 500 B total) → 16 KB page holds ≈64 records.
const INNODB_PAGE: BTreeConfig = BTreeConfig {
    leaf_capacity: 64,
    internal_capacity: 300,
    page_bytes: 16 << 10,
};
/// Wire sizes (MySQL protocol).
const REQ_BYTES: u64 = 130;
const RESP_READ_BYTES: u64 = 190;
const RESP_WRITE_BYTES: u64 = 60;
const RESP_ROW_BYTES: u64 = 110;

struct Shard {
    tree: BTree,
    pool: BufferPool,
    log: CommitLog,
    /// Insert-rate estimator: window start + count.
    rate_window_start: SimTime,
    rate_window_count: u64,
    insert_rate: f64,
    churning: bool,
}

impl Shard {
    fn replay(&mut self, trace: &PageTrace) -> Vec<DiskIo> {
        let mut ios = Vec::new();
        let page_bytes = self.tree.page_bytes();
        for page in trace.read.iter().chain(&trace.written) {
            let access = if trace.written.contains(page) {
                Access::Write
            } else {
                Access::Read
            };
            let r = self.pool.access(*page, access);
            if !r.hit {
                ios.push(DiskIo::random_read(page_bytes));
            }
            if r.writeback.is_some() {
                ios.push(DiskIo::random_write(page_bytes));
            }
        }
        for page in &trace.allocated {
            // Fresh split pages need no read, only eventual write-back.
            let r = self.pool.access(*page, Access::Write);
            if r.writeback.is_some() {
                ios.push(DiskIo::random_write(page_bytes));
            }
        }
        ios
    }

    fn note_insert(&mut self, now: SimTime) {
        self.rate_window_count += 1;
        let elapsed = now.since(self.rate_window_start).as_secs_f64();
        if elapsed >= 1.0 {
            self.insert_rate = self.rate_window_count as f64 / elapsed;
            self.rate_window_start = now;
            self.rate_window_count = 0;
            if self.insert_rate > STATS_CHURN_ON {
                // Sticky for the rest of the run: nothing in the workload
                // re-runs ANALYZE, so the stale plan persists.
                self.churning = true;
            }
        }
    }

    fn stats_churning(&self) -> bool {
        self.churning
    }
}

/// The store.
pub struct MysqlStore {
    // Construction-time config/topology; not part of the snapshot stream.
    ctx: StoreCtx,           // audit:allow(snap-drift)
    shards_map: RdbmsShards, // audit:allow(snap-drift)
    format: StorageFormat,   // audit:allow(snap-drift)
    shards: Vec<Shard>,
}

impl MysqlStore {
    /// Creates the store.
    pub fn new(ctx: StoreCtx, _engine: &mut Engine) -> MysqlStore {
        let pool_pages = ((ctx.scaled_ram() as f64 * BUFFER_POOL_FRACTION) as u64
            / INNODB_PAGE.page_bytes)
            .max(16) as usize;
        let shards = (0..ctx.node_count())
            .map(|_| Shard {
                tree: BTree::new(INNODB_PAGE),
                pool: BufferPool::new(pool_pages),
                log: CommitLog::new(
                    SyncPolicy::GroupCommit {
                        window: COMMIT_WINDOW,
                    },
                    60,
                ),
                rate_window_start: SimTime::ZERO,
                rate_window_count: 0,
                insert_rate: 0.0,
                churning: false,
            })
            .collect();
        MysqlStore {
            shards_map: RdbmsShards::new(ctx.node_count()),
            format: mysql_format(),
            ctx,
            shards,
        }
    }

    /// Diagnostic view of each shard's (insert-rate, churning) state.
    pub fn churn_debug(&self) -> Vec<(f64, bool)> {
        self.shards
            .iter()
            .map(|s| (s.insert_rate, s.stats_churning()))
            .collect()
    }

    fn scan_plan(
        &mut self,
        client: u32,
        start: &apm_core::record::MetricKey,
        len: usize,
    ) -> (OpOutcome, Plan) {
        let net = self.ctx.cluster.net;
        let n = self.shards.len();
        let mut branches = Vec::with_capacity(n);
        let mut merged: Vec<(apm_core::record::MetricKey, apm_core::record::FieldValues)> =
            Vec::new();
        for shard_idx in 0..n {
            let churning = self.shards[shard_idx].stats_churning();
            let rows_in_shard = self.shards[shard_idx].tree.len();
            let (rows, trace) = self.shards[shard_idx].tree.scan(start, len);
            let returned = rows.len();
            merged.extend(rows);
            let ios = self.shards[shard_idx].replay(&trace);
            let mut receipt = CostReceipt::new();
            receipt
                .probe(trace.read.len() as u64)
                .touch((returned * 75) as u64);
            let (cpu, resp_bytes) = if churning {
                // Degraded plan: full table scan, and the driver streams
                // the *unbounded* result set ("all records with a key
                // equal or greater than the start key", §5.4) — on
                // average half the shard — to the client.
                (
                    SCAN_COST.cpu(&receipt)
                        + SimDuration::from_nanos(rows_in_shard * FULL_SCAN_NS_PER_ROW),
                    RESP_ROW_BYTES * (rows_in_shard / 2).max(returned as u64),
                )
            } else {
                (
                    SCAN_COST.cpu(&receipt),
                    RESP_ROW_BYTES * returned.max(1) as u64,
                )
            };
            let server = &self.ctx.servers[shard_idx];
            let mut steps = vec![
                Step::Acquire {
                    resource: self.ctx.client_machine(client).nic,
                    service: net.transfer(REQ_BYTES),
                },
                Step::Delay(net.one_way_latency),
                Step::Acquire {
                    resource: server.nic,
                    service: net.transfer(REQ_BYTES),
                },
            ];
            steps.extend(server_steps(server, &self.ctx.cluster, cpu, &ios));
            steps.push(Step::Acquire {
                resource: server.nic,
                service: net.transfer(resp_bytes),
            });
            steps.push(Step::Delay(net.one_way_latency));
            steps.push(Step::Acquire {
                resource: self.ctx.client_machine(client).nic,
                service: net.transfer(resp_bytes),
            });
            branches.push(Plan(steps));
        }
        merged.sort_unstable_by_key(|(k, _)| *k);
        merged.truncate(len);
        let client_res = self.ctx.client_machine(client);
        let plan = Plan(vec![
            Step::Acquire {
                resource: client_res.cpu,
                service: CLIENT_CPU,
            },
            Step::Join { branches, need: n },
            Step::Acquire {
                resource: client_res.cpu,
                service: SimDuration::from_nanos(3_000 + 400 * (n * len) as u64),
            },
        ]);
        (OpOutcome::Scanned(merged.len()), plan)
    }
}

impl DistributedStore for MysqlStore {
    fn name(&self) -> &'static str {
        "mysql"
    }

    fn ctx(&self) -> &StoreCtx {
        &self.ctx
    }

    fn load(&mut self, record: &Record) {
        let shard = self.shards_map.route(&record.key);
        let (_, trace) = self.shards[shard].tree.insert(record.key, record.fields);
        let _ = self.shards[shard].replay(&trace);
        self.shards[shard].log.append(75);
    }

    fn plan_op(&mut self, client: u32, op: &Operation, engine: &mut Engine) -> (OpOutcome, Plan) {
        match op {
            Operation::Read { key } => {
                let shard_idx = self.shards_map.route(key);
                let shard = &mut self.shards[shard_idx];
                let (found, trace) = shard.tree.get(key);
                let ios = shard.replay(&trace);
                let mut receipt = CostReceipt::new();
                receipt.probe(trace.read.len() as u64).touch(75);
                let outcome = match found {
                    Some(fields) => OpOutcome::Found(Record { key: *key, fields }),
                    None => OpOutcome::Missing,
                };
                let steps = server_steps(
                    &self.ctx.servers[shard_idx],
                    &self.ctx.cluster,
                    POINT_COST.cpu(&receipt),
                    &ios,
                );
                let plan = round_trip_plan(
                    &self.ctx,
                    client,
                    &self.ctx.servers[shard_idx],
                    CLIENT_CPU,
                    REQ_BYTES,
                    RESP_READ_BYTES,
                    steps,
                );
                (outcome, plan)
            }
            Operation::Insert { record } | Operation::Update { record } => {
                let shard_idx = self.shards_map.route(&record.key);
                let now = engine.now();
                let shard = &mut self.shards[shard_idx];
                shard.note_insert(now);
                let (_, trace) = shard.tree.insert(record.key, record.fields);
                let mut ios = shard.replay(&trace);
                let wal = shard.log.append(75);
                let mut receipt = CostReceipt::new();
                receipt
                    .probe((trace.read.len() + trace.written.len()) as u64)
                    .touch(75);
                let server = &self.ctx.servers[shard_idx];
                let mut steps = vec![Step::Acquire {
                    resource: server.cpu,
                    service: WRITE_COST.cpu(&receipt),
                }];
                for io in ios.drain(..) {
                    let pattern = if io.class.is_random() {
                        apm_sim::IoPattern::Random
                    } else {
                        apm_sim::IoPattern::Sequential
                    };
                    steps.push(Step::Acquire {
                        resource: server.disk,
                        service: self.ctx.cluster.node.disk.service(io.bytes, pattern),
                    });
                }
                if let Some(io) = wal.io {
                    steps.push(Step::Acquire {
                        resource: server.disk,
                        service: self
                            .ctx
                            .cluster
                            .node
                            .disk
                            .service(io.bytes, apm_sim::IoPattern::Sequential),
                    });
                }
                if let Some(window) = wal.align {
                    steps.push(Step::AlignTo {
                        period: window,
                        extra: SimDuration::ZERO,
                    });
                }
                let plan = round_trip_plan(
                    &self.ctx,
                    client,
                    server,
                    CLIENT_CPU,
                    REQ_BYTES,
                    RESP_WRITE_BYTES,
                    steps,
                );
                (OpOutcome::Done, plan)
            }
            Operation::Scan { start, len } => {
                let start = *start;
                let len = *len;
                self.scan_plan(client, &start, len)
            }
        }
    }

    fn disk_bytes_per_node(&self) -> Option<u64> {
        let records: u64 = self.shards.iter().map(|s| s.tree.len()).sum();
        Some(self.format.disk_usage(records) / self.shards.len() as u64)
    }

    fn snap_state(&self, w: &mut SnapWriter) {
        for shard in &self.shards {
            shard.tree.snap_state(w);
            shard.pool.snap_state(w);
            shard.log.snap_state(w);
            w.put(&shard.rate_window_start);
            w.put_u64(shard.rate_window_count);
            w.put_f64(shard.insert_rate);
            w.put(&shard.churning);
        }
    }

    fn restore_state(&mut self, r: &mut SnapReader, _engine: &mut Engine) -> Result<(), SnapError> {
        for shard in &mut self.shards {
            shard.tree.restore_state(r)?;
            shard.pool.restore_state(r)?;
            shard.log.restore_state(r)?;
            shard.rate_window_start = r.get()?;
            shard.rate_window_count = r.u64()?;
            shard.insert_rate = r.f64()?;
            shard.churning = r.get()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_benchmark, RunConfig};
    use apm_core::driver::ClientConfig;
    use apm_core::keyspace::record_for_seq;
    use apm_core::ops::OpKind;
    use apm_core::workload::Workload;
    use apm_sim::{ClusterSpec, FaultSchedule};

    fn make(engine: &mut Engine, nodes: u32, scale: f64) -> MysqlStore {
        let ctx = StoreCtx::new(
            engine,
            ClusterSpec::cluster_m(),
            nodes,
            StoreCtx::standard_client_machines(nodes),
            scale,
            29,
        );
        MysqlStore::new(ctx, engine)
    }

    fn quick_run(nodes: u32, workload: Workload) -> crate::runner::RunResult {
        let mut engine = Engine::new();
        let mut s = make(&mut engine, nodes, 0.01);
        let config = RunConfig {
            workload,
            client: ClientConfig::cluster_m(nodes).with_window(0.5, 3.0),
            records_per_node: 20_000,
            nodes,
            seed: 31,
            event_at_secs: None,
            faults: FaultSchedule::none(),
            op_deadline: None,
            telemetry_window_secs: None,
            resilience: None,
            checkpoints: None,
        };
        run_benchmark(&mut engine, &mut s, &config)
    }

    #[test]
    fn point_ops_roundtrip() {
        let mut engine = Engine::new();
        let mut s = make(&mut engine, 3, 0.01);
        for seq in 0..3_000 {
            s.load(&record_for_seq(seq));
        }
        for seq in (0..3_000).step_by(173) {
            let r = record_for_seq(seq);
            let (outcome, _) = s.plan_op(0, &Operation::Read { key: r.key }, &mut engine);
            assert_eq!(outcome, OpOutcome::Found(r), "seq {seq}");
        }
    }

    #[test]
    fn single_node_read_throughput_matches_cassandra_band() {
        // Fig 3: "no significant differences between the throughput of
        // Cassandra and MySQL" (~25 K ops/s).
        let t = quick_run(1, Workload::r()).throughput();
        assert!((15_000.0..40_000.0).contains(&t), "mysql 1-node R: {t}");
    }

    #[test]
    fn write_latency_reflects_group_commit() {
        let result = quick_run(1, Workload::rw());
        let w = result.mean_latency_ms(OpKind::Insert).unwrap();
        let r = result.mean_latency_ms(OpKind::Read).unwrap();
        assert!(
            w > r,
            "redo/binlog group commit must cost writes extra: {w} vs {r}"
        );
    }

    #[test]
    fn rs_scans_hit_every_shard_so_throughput_does_not_scale() {
        // Fig 12: "MySQL has the best throughput for a single node, but
        // does not scale with the number of nodes".
        let one = quick_run(1, Workload::rs()).throughput();
        let four = quick_run(4, Workload::rs()).throughput();
        assert!(
            four < one * 2.5,
            "RS must not scale linearly: {one} → {four}"
        );
        assert!(one > 8_000.0, "1-node RS should be strong: {one}");
    }

    #[test]
    fn rs_scan_latency_grows_with_cluster_size() {
        // Fig 13: MySQL scan latency climbs steeply past 2 nodes.
        let two = quick_run(2, Workload::rs());
        let eight = quick_run(8, Workload::rs());
        let lat2 = two.mean_latency_ms(OpKind::Scan).unwrap();
        let lat8 = eight.mean_latency_ms(OpKind::Scan).unwrap();
        assert!(lat8 > lat2 * 2.0, "scan latency must grow: {lat2} → {lat8}");
    }

    #[test]
    fn rsw_collapses_under_insert_churn() {
        // §5.5: "MySQL's throughput is as low as 20 operations per second
        // for one node and goes below one operation per second for four
        // and more nodes" — insert churn degrades the range scans.
        // Needs a longer window than the other tests: the collapse is a
        // convoy effect that takes a few simulated seconds to converge.
        let long_run = |workload: Workload| {
            let mut engine = Engine::new();
            let mut s = make(&mut engine, 2, 0.01);
            let config = RunConfig {
                workload,
                client: ClientConfig::cluster_m(2).with_window(2.0, 10.0),
                records_per_node: 20_000,
                nodes: 2,
                seed: 31,
                event_at_secs: None,
                faults: FaultSchedule::none(),
                op_deadline: None,
                telemetry_window_secs: None,
                resilience: None,
                checkpoints: None,
            };
            run_benchmark(&mut engine, &mut s, &config)
        };
        let rs = long_run(Workload::rs()).throughput();
        let rsw = long_run(Workload::rsw()).throughput();
        assert!(
            rsw < rs / 20.0,
            "RSW must collapse vs RS: rs={rs} rsw={rsw}"
        );
        assert!(rsw < 2_000.0, "RSW absolute throughput must be tiny: {rsw}");
    }

    #[test]
    fn insert_rate_estimator_trips_only_under_heavy_churn() {
        let mut engine = Engine::new();
        let mut s = make(&mut engine, 1, 0.01);
        for seq in 0..1_000 {
            s.load(&record_for_seq(seq));
        }
        assert!(!s.shards[0].stats_churning(), "fresh shard must not churn");
        // Simulate 10 K inserts/s for 2 simulated seconds.
        for i in 0..20_000u64 {
            let now = SimTime(i * 100_000); // one insert every 100 µs
            s.shards[0].note_insert(now);
        }
        assert!(
            s.shards[0].stats_churning(),
            "10 K inserts/s must trip the estimator"
        );
    }

    #[test]
    fn disk_usage_includes_binlog() {
        let mut engine = Engine::new();
        let mut s = make(&mut engine, 2, 0.01);
        for seq in 0..10_000 {
            s.load(&record_for_seq(seq));
        }
        let per_node = s.disk_bytes_per_node().unwrap();
        assert_eq!(per_node, mysql_format().disk_usage(5_000));
        assert!(mysql_format().includes_log);
    }
}
