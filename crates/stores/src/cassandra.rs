//! The Cassandra-like store: a symmetric token ring of LSM nodes.
//!
//! Architecture (§4.2): every node is equal; the `RandomPartitioner`
//! hashes keys onto a 2^127 token ring; writes land in a commit log
//! (periodic group commit, 10 ms window) and a memtable; SSTables are
//! size-tiered-compacted in the background. The paper ran replication
//! factor 1 and assigned optimal tokens manually (§6).
//!
//! Calibration (single node, Cluster M, 128 connections — §5.1):
//! * Read service ≈ 300 µs CPU ⇒ ~26 K ops/s on 8 cores (Fig 3) and
//!   ≈ 5 ms closed-loop read latency (Fig 4).
//! * Writes pay the group-commit window ⇒ stable ≈ 5–10 ms write latency,
//!   the highest of the field (Fig 5), while costing similar CPU, so
//!   write-heavy workloads gain only modestly on Cluster M (§5.3: +2 %).
//! * Scans cost ≈ 4 × a read (§5.4: "scans are 4 times slower than
//!   reads").

use crate::api::{
    background_token, round_trip_plan, server_steps, CostModel, DistributedStore, StoreCtx,
};
use crate::cache::PageCache;
use crate::routing::{TokenAssignment, TokenRing};
use apm_core::ops::{OpOutcome, Operation};
use apm_core::record::Record;
use apm_core::snap::{SnapError, SnapReader, SnapWriter};
use apm_sim::{Engine, Plan, SimDuration, Step};
use apm_storage::encoding::{cassandra_format, StorageFormat};
use apm_storage::lsm::{BackgroundJob, CompactionStrategy, JobKind, LsmConfig, LsmTree};
use apm_storage::receipt::DiskIo;
use apm_storage::wal::{CommitLog, SyncPolicy};
use std::collections::BTreeMap;

/// Read path CPU model (thrift parse, row resolution, merge).
const READ_COST: CostModel = CostModel {
    base_ns: 275_000,
    per_probe_ns: 8_000,
    per_byte_ns: 30,
};
/// Write path CPU model (mutation, memtable, commit-log buffer).
const WRITE_COST: CostModel = CostModel {
    base_ns: 285_000,
    per_probe_ns: 8_000,
    per_byte_ns: 30,
};
/// Scan path CPU model — a `get_range_slices` call costs several times a
/// point read in service (§5.4: "scans are 4 times slower than reads"),
/// which under 128-connection saturation lands the absolute scan latency
/// in the paper's 20–25 ms band (Fig 13).
const SCAN_COST: CostModel = CostModel {
    base_ns: 2_400_000,
    per_probe_ns: 8_000,
    per_byte_ns: 30,
};
/// Client-side cost per operation (Hector/thrift serialisation).
const CLIENT_CPU: SimDuration = SimDuration::from_micros(20);
/// Commit log group-commit window. Calibrated to Cassandra's effective
/// mutation-acknowledgement batching under load: writes ride a periodic
/// sync/batch boundary, which is why Cassandra's write latency is the
/// highest *stable* one in Fig 5 while staying low enough that Cluster-D
/// write throughput is CPU- not window-bound (Fig 18).
const COMMIT_WINDOW: SimDuration = SimDuration::from_millis(2);
/// Fraction of node RAM available as OS page cache (rest is JVM heap).
const PAGE_CACHE_FRACTION: f64 = 0.6;
/// Request/response sizes on the wire (thrift framing + payload).
const REQ_BYTES: u64 = 120;
const RESP_READ_BYTES: u64 = 220;
const RESP_WRITE_BYTES: u64 = 60;

/// Tuning of the store (exposed for the ablation experiments).
#[derive(Clone, Copy, Debug)]
pub struct CassandraConfig {
    /// Token assignment policy (paper default after §6: optimal).
    pub tokens: TokenAssignment,
    /// Replication factor (paper: 1; the replication extension sweeps it
    /// — §8: "we will determine the impact of replication").
    pub replication: usize,
    /// SSTable compression (paper: off — §5.7: "can be reduced by using
    /// compression which, however, will decrease the throughput"; the
    /// compression extension turns it on).
    pub compression: bool,
    /// Memtable flush threshold in raw bytes, already scale-adjusted by
    /// [`CassandraStore::new`] when left at the default.
    pub memtable_flush_bytes: Option<u64>,
    /// Compaction strategy (paper/Cassandra 1.0 default: size-tiered;
    /// the compaction ablation compares against the leveled policy).
    pub strategy: CompactionStrategy,
    /// When set, the store bootstraps one extra node the first time the
    /// benchmark driver fires its timed event (elasticity experiment;
    /// cf. the Konstantinou et al. elasticity study cited in §7).
    pub bootstrap_on_event: bool,
    /// **Test-only known bug**: a rejoining node *discards* its hint
    /// queue instead of replaying it, silently losing every write acked
    /// via hinted handoff during its downtime. The node still tells the
    /// hint auditor the queue drained — modelling a recovery path whose
    /// internal bookkeeping believes it succeeded — so only an
    /// end-to-end durability oracle (the chaos harness's acked-write
    /// readback) can catch it. Exists to prove that oracle and the
    /// schedule shrinker work; never set outside tests and fixtures.
    pub skip_hint_replay: bool,
}

impl Default for CassandraConfig {
    fn default() -> Self {
        CassandraConfig {
            tokens: TokenAssignment::Optimal,
            replication: 1,
            compression: false,
            memtable_flush_bytes: None,
            strategy: CompactionStrategy::SizeTiered,
            bootstrap_on_event: false,
            skip_hint_replay: false,
        }
    }
}

/// Snappy-style compression of the small APM records: ~0.55 of the
/// on-disk size. Decompression is block-granular: a point read must
/// decompress its whole 64 KB block (~4 ns/byte in 2012), which is the
/// throughput cost §5.7 alludes to.
const COMPRESSION_RATIO: f64 = 0.55;
const DECOMPRESS_NS_PER_BYTE: u64 = 4;

struct Node {
    lsm: LsmTree,
    log: CommitLog,
    cache: PageCache,
}

/// The store.
pub struct CassandraStore {
    ctx: StoreCtx,
    ring: TokenRing,
    // Construction-time config below; not part of the snapshot stream
    // (`ctx.servers` and the ring, which bootstrap mutates, are).
    format: StorageFormat,        // audit:allow(snap-drift)
    replication: usize,           // audit:allow(snap-drift)
    compression: bool,            // audit:allow(snap-drift)
    bootstrap_on_event: bool,     // audit:allow(snap-drift)
    skip_hint_replay: bool,       // audit:allow(snap-drift)
    flush_bytes: u64,             // audit:allow(snap-drift)
    cache_bytes: u64,             // audit:allow(snap-drift)
    strategy: CompactionStrategy, // audit:allow(snap-drift)
    nodes: Vec<Node>,
    /// Per-node crash flag: a down node takes no reads, writes, or hints.
    down: Vec<bool>,
    /// Hinted handoff queues: writes a down replica missed, replayed to
    /// it when it rejoins the ring (Cassandra's hinted handoff).
    hints: Vec<Vec<Record>>,
    /// Hinted-handoff drain auditor (see `crate::audit`).
    #[cfg(feature = "audit")]
    hint_audit: crate::audit::HintAuditor,
    /// Global background job id → (node index, engine-local job).
    jobs: BTreeMap<u64, (usize, BackgroundJob)>,
    /// Background jobs that are bootstrap streams, not LSM jobs.
    stream_jobs: std::collections::BTreeSet<u64>,
    /// Bytes streamed by completed/running bootstraps (diagnostics).
    streamed_bytes: u64,
    next_job: u64,
}

impl CassandraStore {
    /// Creates the store over an instantiated context.
    pub fn new(ctx: StoreCtx, config: CassandraConfig) -> CassandraStore {
        let n = ctx.node_count();
        // 64 MB memtables at paper scale, shrunk with the dataset so the
        // flush/compaction cadence per record matches.
        let flush_bytes = config
            .memtable_flush_bytes
            .unwrap_or(((64u64 << 20) as f64 * ctx.scale) as u64)
            .max(64 << 10);
        let cache_bytes = (ctx.scaled_ram() as f64 * PAGE_CACHE_FRACTION) as u64;
        let nodes = (0..n)
            .map(|i| Node {
                lsm: LsmTree::new(LsmConfig {
                    memtable_flush_bytes: flush_bytes,
                    strategy: config.strategy,
                    ..LsmConfig::default()
                }),
                log: CommitLog::new(
                    SyncPolicy::GroupCommit {
                        window: COMMIT_WINDOW,
                    },
                    30,
                ),
                cache: PageCache::new(cache_bytes, ctx.seed ^ (i as u64) << 8),
            })
            .collect();
        CassandraStore {
            ring: TokenRing::new(n, config.tokens),
            format: cassandra_format(),
            replication: config.replication.max(1),
            compression: config.compression,
            bootstrap_on_event: config.bootstrap_on_event,
            skip_hint_replay: config.skip_hint_replay,
            flush_bytes,
            cache_bytes,
            strategy: config.strategy,
            ctx,
            nodes,
            down: vec![false; n],
            hints: vec![Vec::new(); n],
            #[cfg(feature = "audit")]
            hint_audit: crate::audit::HintAuditor::default(),
            jobs: BTreeMap::new(),
            stream_jobs: std::collections::BTreeSet::new(),
            streamed_bytes: 0,
            next_job: 1,
        }
    }

    /// Builds an empty node shell from the store's config; the restore
    /// path fills it from a snapshot.
    fn fresh_node(&self, idx: usize) -> Node {
        Node {
            lsm: LsmTree::new(LsmConfig {
                memtable_flush_bytes: self.flush_bytes,
                strategy: self.strategy,
                ..LsmConfig::default()
            }),
            log: CommitLog::new(
                SyncPolicy::GroupCommit {
                    window: COMMIT_WINDOW,
                },
                30,
            ),
            cache: PageCache::new(self.cache_bytes, self.ctx.seed ^ ((idx as u64) << 8)),
        }
    }

    /// Bootstraps one new node into the ring (Cassandra 1.0 style): the
    /// newcomer takes a token in the middle of the largest range and the
    /// victim node streams the affected records over. The copies are
    /// immediately readable on the new node; the source keeps its stale
    /// copies until a cleanup (exactly like `nodetool cleanup` semantics).
    /// Returns (victim node, bytes streamed).
    pub fn add_node(&mut self, engine: &mut Engine) -> (usize, u64) {
        use apm_core::record::MetricKey;
        let victim = self.ring.extend();
        let new_idx = self.nodes.len();
        let cluster = self.ctx.cluster;
        let res = apm_sim::cluster::NodeResources {
            cpu: engine.add_resource(format!("node{new_idx}.cpu"), cluster.node.cores),
            disk: engine.add_resource(format!("node{new_idx}.disk"), cluster.node.spindles),
            nic: engine.add_resource(format!("node{new_idx}.nic"), 1),
        };
        self.ctx.servers.push(res);
        self.nodes.push(Node {
            lsm: LsmTree::new(LsmConfig {
                memtable_flush_bytes: self.flush_bytes,
                strategy: self.strategy,
                ..LsmConfig::default()
            }),
            log: CommitLog::new(
                SyncPolicy::GroupCommit {
                    window: COMMIT_WINDOW,
                },
                30,
            ),
            cache: PageCache::new(self.cache_bytes, self.ctx.seed ^ ((new_idx as u64) << 8)),
        });
        self.down.push(false);
        self.hints.push(Vec::new());
        // Stream: every victim record the extended ring now routes to the
        // newcomer. Real data moves between real LSM trees.
        let total = self.nodes[victim].lsm.record_count() as usize;
        let (all, _) = self.nodes[victim].lsm.scan(&MetricKey::MIN, total);
        let moving: Vec<_> = all
            .into_iter()
            .filter(|(k, _)| self.ring.route(k) == new_idx)
            .collect();
        let moved_raw = (moving.len() * apm_core::record::RAW_RECORD_SIZE) as u64;
        for (k, v) in moving {
            let (_, job) = self.nodes[new_idx].lsm.insert(k, v);
            let mut next = job;
            while let Some(j) = next {
                next = match j.kind {
                    JobKind::Flush => self.nodes[new_idx].lsm.complete_flush(j.id),
                    JobKind::Compaction => self.nodes[new_idx].lsm.complete_compaction(j.id),
                };
            }
        }
        let bytes = self.expand(moved_raw);
        self.streamed_bytes += bytes;
        // Charge the stream: sequential read at the victim, transfer over
        // both NICs, sequential write at the newcomer — interfering with
        // foreground traffic on both nodes while it runs.
        let id = self.next_job;
        self.next_job += 1;
        self.stream_jobs.insert(id);
        let net = cluster.net;
        engine.submit(
            Plan(vec![
                Step::Acquire {
                    resource: self.ctx.servers[victim].disk,
                    service: cluster
                        .node
                        .disk
                        .service(bytes, apm_sim::IoPattern::Sequential),
                },
                Step::Acquire {
                    resource: self.ctx.servers[victim].nic,
                    service: net.transfer(bytes),
                },
                Step::Delay(net.one_way_latency),
                Step::Acquire {
                    resource: self.ctx.servers[new_idx].nic,
                    service: net.transfer(bytes),
                },
                Step::Acquire {
                    resource: self.ctx.servers[new_idx].disk,
                    service: cluster
                        .node
                        .disk
                        .service(bytes, apm_sim::IoPattern::Sequential),
                },
            ]),
            crate::api::background_token(id),
        );
        (victim, bytes)
    }

    /// Total bytes streamed by node bootstraps so far.
    pub fn streamed_bytes(&self) -> u64 {
        self.streamed_bytes
    }

    /// Current node count (grows when bootstraps happen).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Bytes on disk at a node, in the store's on-disk format.
    fn node_disk_bytes(&self, node: usize) -> u64 {
        let base = self.format.disk_usage(self.nodes[node].lsm.record_count());
        if self.compression {
            (base as f64 * COMPRESSION_RATIO) as u64
        } else {
            base
        }
    }

    /// On-disk expansion factor applied to the engine's raw I/O sizes.
    fn expand(&self, bytes: u64) -> u64 {
        let expanded = bytes as f64 * self.format.expansion();
        if self.compression {
            (expanded * COMPRESSION_RATIO).round() as u64
        } else {
            expanded.round() as u64
        }
    }

    /// Extra CPU to decompress the blocks a read touched.
    fn compression_cpu(&self, blocks_read: usize) -> SimDuration {
        if self.compression {
            SimDuration::from_nanos(
                blocks_read as u64 * LsmConfig::default().block_bytes * DECOMPRESS_NS_PER_BYTE,
            )
        } else {
            SimDuration::ZERO
        }
    }

    /// Replays the hint queue to a node that just rejoined the ring:
    /// the missed mutations land in its LSM tree and the transfer is
    /// charged as a background stream (NIC in, sequential disk write)
    /// that competes with recovering foreground traffic.
    fn replay_hints(&mut self, node: usize, engine: &mut Engine) {
        let hints = std::mem::take(&mut self.hints[node]);
        #[cfg(feature = "audit")]
        self.hint_audit
            .on_replayed(engine.now(), node, hints.len() as u64);
        if hints.is_empty() {
            return;
        }
        if self.skip_hint_replay {
            // Test-only known bug (see `CassandraConfig::skip_hint_replay`):
            // the queue is dropped on the floor after telling the auditor it
            // drained, so every write acked via hinted handoff during the
            // node's downtime is silently lost. Only the chaos harness's
            // end-to-end durability oracle can observe this.
            return;
        }
        let raw = (hints.len() * apm_core::record::RAW_RECORD_SIZE) as u64;
        for record in &hints {
            let (_, job) = self.nodes[node].lsm.insert(record.key, record.fields);
            let mut next = job;
            while let Some(j) = next {
                next = match j.kind {
                    JobKind::Flush => self.nodes[node].lsm.complete_flush(j.id),
                    JobKind::Compaction => self.nodes[node].lsm.complete_compaction(j.id),
                };
            }
        }
        let bytes = self.expand(raw);
        let id = self.next_job;
        self.next_job += 1;
        self.stream_jobs.insert(id);
        let res = self.ctx.servers[node];
        engine.submit(
            Plan(vec![
                Step::Acquire {
                    resource: res.nic,
                    service: self.ctx.cluster.net.transfer(bytes),
                },
                Step::Acquire {
                    resource: res.disk,
                    service: self
                        .ctx
                        .cluster
                        .node
                        .disk
                        .service(bytes, apm_sim::IoPattern::Sequential),
                },
            ]),
            background_token(id),
        );
    }

    /// Submits the plan of an announced LSM background job.
    fn schedule_job(&mut self, node: usize, job: BackgroundJob, engine: &mut Engine) {
        let id = self.next_job;
        self.next_job += 1;
        let res = self.ctx.servers[node];
        let mut steps = Vec::new();
        // Compaction reads its inputs (sequential, may be cached).
        if job.read_bytes > 0 {
            steps.push(Step::Acquire {
                resource: res.disk,
                service: self
                    .ctx
                    .cluster
                    .node
                    .disk
                    .service(self.expand(job.read_bytes), apm_sim::IoPattern::Sequential),
            });
        }
        // CPU to serialise/merge.
        steps.push(Step::Acquire {
            resource: res.cpu,
            service: SimDuration::from_nanos(self.expand(job.write_bytes) * 12),
        });
        steps.push(Step::Acquire {
            resource: res.disk,
            service: self
                .ctx
                .cluster
                .node
                .disk
                .service(self.expand(job.write_bytes), apm_sim::IoPattern::Sequential),
        });
        self.jobs.insert(id, (node, job));
        engine.submit(Plan(steps), background_token(id));
    }

    fn read_plan(&mut self, client: u32, node: usize, op: &Operation) -> (OpOutcome, Plan) {
        let node_state = &mut self.nodes[node];
        let data_bytes = cassandra_format().disk_usage(node_state.lsm.record_count());
        let (outcome, receipt, cost, resp) = match op {
            Operation::Read { key } => {
                let (found, receipt) = node_state.lsm.get(key);
                let outcome = match found {
                    Some(fields) => OpOutcome::Found(Record { key: *key, fields }),
                    None => OpOutcome::Missing,
                };
                (outcome, receipt, READ_COST, RESP_READ_BYTES)
            }
            Operation::Scan { start, len } => {
                let (rows, receipt) = node_state.lsm.scan(start, *len);
                (
                    OpOutcome::Scanned(rows.len()),
                    receipt,
                    SCAN_COST,
                    RESP_READ_BYTES * (*len as u64) / 2,
                )
            }
            _ => unreachable!("write ops handled in write_plan"),
        };
        let ios: Vec<DiskIo> = node_state.cache.filter_ios(&receipt.io, data_bytes);
        let cpu = cost.cpu(&receipt) + self.compression_cpu(receipt.read_ios());
        let steps = server_steps(&self.ctx.servers[node], &self.ctx.cluster, cpu, &ios);
        let plan = round_trip_plan(
            &self.ctx,
            client,
            &self.ctx.servers[node],
            CLIENT_CPU,
            REQ_BYTES,
            resp,
            steps,
        );
        (outcome, plan)
    }

    fn write_plan(
        &mut self,
        client: u32,
        record: &Record,
        engine: &mut Engine,
    ) -> (OpOutcome, Plan) {
        let replicas = self.ring.replicas(&record.key, self.replication);
        if replicas.iter().all(|&n| self.down[n]) {
            // Every replica is down: nothing applies, nothing is hinted —
            // the request dies against the crashed coordinator. The abort
            // is unconditional (Step::Fail, not an acquire against the
            // crashed node): the refusal was decided here, and a replica
            // restarting before the plan reaches the server must not turn
            // it into a success the store never applied.
            let primary = self.ctx.servers[replicas[0]];
            let plan = round_trip_plan(
                &self.ctx,
                client,
                &primary,
                CLIENT_CPU,
                REQ_BYTES,
                RESP_WRITE_BYTES,
                vec![Step::Fail {
                    latency: apm_sim::fault::CRASH_ERROR_LATENCY,
                }],
            );
            return (OpOutcome::Done, plan);
        }
        let mut branches: Vec<Plan> = Vec::with_capacity(replicas.len());
        for &node in &replicas {
            if self.down[node] {
                // Hinted handoff: the live coordinator stores the mutation
                // and replays it when the replica rejoins.
                self.hints[node].push(*record);
                #[cfg(feature = "audit")]
                self.hint_audit.on_queued(engine.now(), node);
                continue;
            }
            let (receipt, flush) = self.nodes[node].lsm.insert(record.key, record.fields);
            let wal = self.nodes[node]
                .log
                .append(record.fields.len() as u64 + record.key.len() as u64);
            let res = self.ctx.servers[node];
            let mut steps = vec![Step::Acquire {
                resource: res.cpu,
                service: WRITE_COST.cpu(&receipt),
            }];
            if let Some(io) = wal.io {
                steps.push(Step::Acquire {
                    resource: res.disk,
                    service: self
                        .ctx
                        .cluster
                        .node
                        .disk
                        .service(io.bytes, apm_sim::IoPattern::Sequential),
                });
            }
            if let Some(window) = wal.align {
                // Periodic commit log: the write acknowledges at the next
                // group sync — Cassandra's signature high, stable write
                // latency (Fig 5).
                steps.push(Step::AlignTo {
                    period: window,
                    extra: SimDuration::ZERO,
                });
            }
            branches.push(Plan(steps));
            if let Some(job) = flush {
                self.schedule_job(node, job, engine);
            }
        }
        // Coordinator = first live replica; consistency ONE on rf=1 means
        // the single branch; with rf>1 the client waits for one ack while
        // the remaining replicas apply in the background.
        let primary = replicas
            .iter()
            .copied()
            .find(|&n| !self.down[n])
            .expect("at least one live replica");
        let server_plan = if branches.len() == 1 {
            branches.pop().expect("one branch").0
        } else {
            vec![Step::Join { branches, need: 1 }]
        };
        let plan = round_trip_plan(
            &self.ctx,
            client,
            &self.ctx.servers[primary],
            CLIENT_CPU,
            REQ_BYTES,
            RESP_WRITE_BYTES,
            server_plan,
        );
        (OpOutcome::Done, plan)
    }
}

impl DistributedStore for CassandraStore {
    fn name(&self) -> &'static str {
        "cassandra"
    }

    fn ctx(&self) -> &StoreCtx {
        &self.ctx
    }

    fn load(&mut self, record: &Record) {
        for &node in &self.ring.replicas(&record.key, self.replication) {
            let (_, job) = self.nodes[node].lsm.insert(record.key, record.fields);
            let mut next = job;
            while let Some(j) = next {
                next = match j.kind {
                    JobKind::Flush => self.nodes[node].lsm.complete_flush(j.id),
                    JobKind::Compaction => self.nodes[node].lsm.complete_compaction(j.id),
                };
            }
        }
    }

    fn finish_load(&mut self) {
        for node in &mut self.nodes {
            let mut next = node.lsm.force_flush();
            while let Some(j) = next {
                next = match j.kind {
                    JobKind::Flush => node.lsm.complete_flush(j.id),
                    JobKind::Compaction => node.lsm.complete_compaction(j.id),
                };
            }
        }
    }

    fn plan_op(&mut self, client: u32, op: &Operation, engine: &mut Engine) -> (OpOutcome, Plan) {
        match op {
            Operation::Read { key } | Operation::Scan { start: key, .. } => {
                // Coordinator-side failover: read from the first replica
                // that is still up. With rf=1 there is nowhere to go and
                // the request fails against the crashed node.
                let replicas = self.ring.replicas(key, self.replication);
                let node = replicas
                    .iter()
                    .copied()
                    .find(|&n| !self.down[n])
                    .unwrap_or(replicas[0]);
                self.read_plan(client, node, op)
            }
            Operation::Insert { record } | Operation::Update { record } => {
                self.write_plan(client, record, engine)
            }
        }
    }

    fn plan_target(&self, op: &Operation) -> Option<usize> {
        // The node the coordinator-side failover in [`Self::plan_op`]
        // would read from (writes target the same primary replica).
        let replicas = self.ring.replicas(op.routing_key(), self.replication);
        Some(
            replicas
                .iter()
                .copied()
                .find(|&n| !self.down[n])
                .unwrap_or(replicas[0]),
        )
    }

    fn hedge_read_plan(
        &mut self,
        client: u32,
        op: &Operation,
        _engine: &mut Engine,
    ) -> Option<Plan> {
        let Operation::Read { key } = op else {
            return None;
        };
        // Speculative retry (the feature Cassandra later shipped as
        // "rapid read protection"): duplicate the read to the next
        // replica in ring order that is up and is not the node the
        // primary attempt targeted.
        let replicas = self.ring.replicas(key, self.replication);
        let primary = replicas
            .iter()
            .copied()
            .find(|&n| !self.down[n])
            .unwrap_or(replicas[0]);
        let alt = replicas
            .iter()
            .copied()
            .find(|&n| n != primary && !self.down[n])?;
        Some(self.read_plan(client, alt, op).1)
    }

    fn on_timed_event(&mut self, engine: &mut Engine) {
        if self.bootstrap_on_event {
            self.add_node(engine);
        }
    }

    fn on_fault(&mut self, event: &apm_sim::FaultEvent, engine: &mut Engine) {
        crate::api::apply_node_fault(&self.ctx, engine, event);
        if event.node >= self.nodes.len() {
            return;
        }
        match event.kind {
            apm_sim::FaultKind::Crash => {
                self.down[event.node] = true;
                // The process is gone: the OS page cache restarts cold.
                self.nodes[event.node].cache =
                    PageCache::new(self.cache_bytes, self.ctx.seed ^ ((event.node as u64) << 8));
            }
            apm_sim::FaultKind::Restart => {
                self.down[event.node] = false;
                self.replay_hints(event.node, engine);
                // Hinted handoff must drain: the rejoined replica's queue
                // is empty and queued/replayed totals balance.
                #[cfg(feature = "audit")]
                self.hint_audit
                    .assert_drained(event.node, self.hints[event.node].len());
            }
            // Slowdowns and partitions are applied uniformly by
            // `apply_node_fault` above; no Cassandra-specific bookkeeping.
            apm_sim::FaultKind::DiskSlow { .. }
            | apm_sim::FaultKind::DiskRestore
            | apm_sim::FaultKind::PartitionStart
            | apm_sim::FaultKind::PartitionEnd
            | apm_sim::FaultKind::FailSlow { .. }
            | apm_sim::FaultKind::FailSlowEnd => {}
        }
    }

    fn on_background(&mut self, job_id: u64, engine: &mut Engine) {
        if self.stream_jobs.remove(&job_id) {
            return; // bootstrap stream finished
        }
        let (node, job) = self.jobs.remove(&job_id).expect("known background job");
        let follow = match job.kind {
            JobKind::Flush => self.nodes[node].lsm.complete_flush(job.id),
            JobKind::Compaction => self.nodes[node].lsm.complete_compaction(job.id),
        };
        if let Some(next) = follow {
            self.schedule_job(node, next, engine);
        }
    }

    fn disk_bytes_per_node(&self) -> Option<u64> {
        let total: u64 = (0..self.nodes.len()).map(|i| self.node_disk_bytes(i)).sum();
        Some(total / self.nodes.len() as u64)
    }

    fn snap_state(&self, w: &mut SnapWriter) {
        w.put(&self.ctx.servers);
        w.put(&self.ring);
        w.put_u64(self.nodes.len() as u64);
        for node in &self.nodes {
            node.lsm.snap_state(w);
            node.log.snap_state(w);
            node.cache.snap_state(w);
        }
        w.put(&self.down);
        w.put(&self.hints);
        // The sealed container's feature byte (checked in `open`) rejects
        // cross-feature streams before this codec runs.
        #[cfg(feature = "audit")] // audit:allow(feature-symmetry)
        w.put(&self.hint_audit);
        w.put(&self.jobs);
        w.put(&self.stream_jobs);
        w.put_u64(self.streamed_bytes);
        w.put_u64(self.next_job);
    }

    fn restore_state(&mut self, r: &mut SnapReader, _engine: &mut Engine) -> Result<(), SnapError> {
        self.ctx.servers = r.get()?;
        self.ring = r.get()?;
        // Bootstrap may have grown the cluster since the snapshot's run
        // started; rebuild node shells before filling them.
        let n = r.u64()? as usize;
        while self.nodes.len() < n {
            let idx = self.nodes.len();
            let shell = self.fresh_node(idx);
            self.nodes.push(shell);
        }
        self.nodes.truncate(n);
        for node in &mut self.nodes {
            node.lsm.restore_state(r)?;
            node.log.restore_state(r)?;
            node.cache.restore_state(r)?;
        }
        self.down = r.get()?;
        self.hints = r.get()?;
        // Container feature byte guards this read; see `snap_state`.
        #[cfg(feature = "audit")] // audit:allow(feature-symmetry)
        {
            self.hint_audit = r.get()?;
        }
        self.jobs = r.get()?;
        self.stream_jobs = r.get()?;
        self.streamed_bytes = r.u64()?;
        self.next_job = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_benchmark, RunConfig};
    use apm_core::driver::ClientConfig;
    use apm_core::keyspace::record_for_seq;
    use apm_core::ops::OpKind;
    use apm_core::workload::Workload;
    use apm_sim::{ClusterSpec, FaultSchedule};

    fn store(engine: &mut Engine, nodes: u32) -> CassandraStore {
        let ctx = StoreCtx::new(
            engine,
            ClusterSpec::cluster_m(),
            nodes,
            StoreCtx::standard_client_machines(nodes),
            0.01,
            11,
        );
        CassandraStore::new(ctx, CassandraConfig::default())
    }

    fn quick_run(nodes: u32, workload: Workload) -> crate::runner::RunResult {
        let mut engine = Engine::new();
        let mut s = store(&mut engine, nodes);
        let config = RunConfig {
            workload,
            client: ClientConfig::cluster_m(nodes).with_window(0.5, 3.0),
            records_per_node: 20_000,
            nodes,
            seed: 5,
            event_at_secs: None,
            faults: FaultSchedule::none(),
            op_deadline: None,
            telemetry_window_secs: None,
            resilience: None,
            checkpoints: None,
        };
        run_benchmark(&mut engine, &mut s, &config)
    }

    #[test]
    fn data_is_complete_after_load() {
        let mut engine = Engine::new();
        let mut s = store(&mut engine, 3);
        for seq in 0..5_000 {
            s.load(&record_for_seq(seq));
        }
        s.finish_load();
        let total: u64 = s.nodes.iter().map(|n| n.lsm.record_count()).sum();
        assert_eq!(total, 5_000);
        // Every record readable through the ring.
        for seq in (0..5_000).step_by(199) {
            let r = record_for_seq(seq);
            let node = s.ring.route(&r.key);
            let (found, _) = s.nodes[node].lsm.get(&r.key);
            assert_eq!(found, Some(r.fields), "seq {seq} unreadable");
        }
    }

    #[test]
    fn single_node_throughput_is_in_paper_band() {
        // Fig 3: Cassandra ≈ 25 K ops/s on one Cluster-M node.
        let result = quick_run(1, Workload::r());
        let t = result.throughput();
        assert!((15_000.0..40_000.0).contains(&t), "cassandra 1-node R: {t}");
    }

    #[test]
    fn write_latency_is_dominated_by_group_commit() {
        // Fig 5: Cassandra's write latency is high (≥ several ms) and
        // higher than its own read latency's queueing share would imply.
        let result = quick_run(1, Workload::r());
        let w = result
            .mean_latency_ms(OpKind::Insert)
            .expect("writes measured");
        assert!(
            w >= 4.0,
            "write latency must include the 10 ms group window: {w} ms"
        );
    }

    #[test]
    fn throughput_scales_near_linearly() {
        // Fig 3: "a nice linear behavior in the maximum throughput".
        let one = quick_run(1, Workload::r()).throughput();
        let four = quick_run(4, Workload::r()).throughput();
        let speedup = four / one;
        assert!(speedup > 3.0, "4-node speedup too low: {speedup:.2}");
        assert!(speedup < 5.0, "4-node speedup implausible: {speedup:.2}");
    }

    #[test]
    fn scan_latency_lands_in_the_paper_band() {
        // Fig 13: Cassandra scans are "constant and in the range of
        // 20-25 milliseconds"; under a shared saturated queue the
        // scan-vs-read gap is the service-time gap (§5.4's 4× is a
        // service-time ratio, queueing is common to both).
        let result = quick_run(2, Workload::rs());
        let read = result.mean_latency_ms(OpKind::Read).expect("reads");
        let scan = result.mean_latency_ms(OpKind::Scan).expect("scans");
        assert!(
            scan > read,
            "scans must be slower than reads: {scan:.2} vs {read:.2}"
        );
        assert!(
            (8.0..45.0).contains(&scan),
            "scan latency out of band: {scan:.2} ms"
        );
    }

    #[test]
    fn disk_usage_matches_the_format() {
        let mut engine = Engine::new();
        let mut s = store(&mut engine, 2);
        for seq in 0..10_000 {
            s.load(&record_for_seq(seq));
        }
        s.finish_load();
        let per_node = s.disk_bytes_per_node().unwrap();
        let expected = cassandra_format().disk_usage(5_000);
        let rel = (per_node as f64 - expected as f64).abs() / expected as f64;
        assert!(
            rel < 0.15,
            "per-node usage {per_node} vs expected {expected}"
        );
    }

    #[test]
    fn background_jobs_are_scheduled_and_completed() {
        let mut engine = Engine::new();
        let ctx = StoreCtx::new(&mut engine, ClusterSpec::cluster_m(), 1, 1, 0.01, 3);
        let mut s = CassandraStore::new(
            ctx,
            CassandraConfig {
                memtable_flush_bytes: Some(75 * 500),
                ..CassandraConfig::default()
            },
        );
        // Insert enough through plan_op to trip a flush.
        for seq in 0..1_000 {
            let record = record_for_seq(seq);
            let (outcome, plan) = s.plan_op(0, &Operation::Insert { record }, &mut engine);
            assert_eq!(outcome, OpOutcome::Done);
            engine.submit(plan, apm_sim::kernel::Token(0));
            while let Some(c) = engine.next_completion() {
                let (bg, id) = crate::api::split_token(c.token);
                if bg {
                    s.on_background(id, &mut engine);
                } else {
                    break;
                }
            }
        }
        assert!(s.nodes[0].lsm.stats().flushes > 0, "flush never completed");
        assert!(s.jobs.is_empty(), "jobs left dangling");
    }

    #[test]
    fn bootstrap_keeps_every_record_readable() {
        let mut engine = Engine::new();
        let mut s = store(&mut engine, 4);
        for seq in 0..4_000 {
            s.load(&record_for_seq(seq));
        }
        s.finish_load();
        let (victim, bytes) = s.add_node(&mut engine);
        assert!(victim < 4);
        assert!(bytes > 0, "bootstrap must stream data");
        assert_eq!(s.node_count(), 5);
        // The newcomer owns real data and every record routes correctly.
        assert!(s.nodes[4].lsm.record_count() > 0, "new node got nothing");
        for seq in (0..4_000).step_by(97) {
            let r = record_for_seq(seq);
            let node = s.ring.route(&r.key);
            let (found, _) = s.nodes[node].lsm.get(&r.key);
            assert_eq!(
                found,
                Some(r.fields),
                "seq {seq} unreadable after bootstrap"
            );
        }
        engine.run_to_idle();
        assert!(s.streamed_bytes() >= bytes);
    }

    #[test]
    fn crashed_replica_catches_up_through_hinted_handoff() {
        use apm_sim::{FaultEvent, FaultKind, SimTime};
        let mut engine = Engine::new();
        let ctx = StoreCtx::new(&mut engine, ClusterSpec::cluster_m(), 3, 1, 0.01, 3);
        let mut s = CassandraStore::new(
            ctx,
            CassandraConfig {
                replication: 2,
                ..Default::default()
            },
        );
        for seq in 0..200 {
            s.load(&record_for_seq(seq));
        }
        s.finish_load();
        // Crash node 1, write fresh records while it is down.
        s.on_fault(
            &FaultEvent {
                at: SimTime(0),
                node: 1,
                kind: FaultKind::Crash,
            },
            &mut engine,
        );
        let before = s.nodes[1].lsm.record_count();
        for seq in 200..400 {
            let record = record_for_seq(seq);
            let (outcome, _) = s.plan_op(0, &Operation::Insert { record }, &mut engine);
            assert_eq!(outcome, OpOutcome::Done);
        }
        assert_eq!(
            s.nodes[1].lsm.record_count(),
            before,
            "down node must take no writes"
        );
        let hinted: usize = s.hints[1].len();
        // Restart: hints replay and the node converges to both copies.
        s.on_fault(
            &FaultEvent {
                at: SimTime(0),
                node: 1,
                kind: FaultKind::Restart,
            },
            &mut engine,
        );
        assert!(s.hints[1].is_empty(), "hints must drain on rejoin");
        assert_eq!(s.nodes[1].lsm.record_count(), before + hinted as u64);
        let total: u64 = s.nodes.iter().map(|n| n.lsm.record_count()).sum();
        assert_eq!(
            total, 800,
            "rf=2 must converge to two copies of all 400 records"
        );
        engine.run_to_idle();
    }

    /// The store auditor's evidence stream must balance: every hint
    /// queued while the replica was down is replayed exactly once on
    /// rejoin, and all Queued events precede the Replayed event.
    #[cfg(feature = "audit")]
    #[test]
    fn hint_auditor_evidence_stream_balances_on_rejoin() {
        use crate::audit::HintEventKind;
        use apm_sim::{FaultEvent, FaultKind, SimTime};
        let mut engine = Engine::new();
        let ctx = StoreCtx::new(&mut engine, ClusterSpec::cluster_m(), 3, 1, 0.01, 3);
        let mut s = CassandraStore::new(
            ctx,
            CassandraConfig {
                replication: 2,
                ..Default::default()
            },
        );
        for seq in 0..100 {
            s.load(&record_for_seq(seq));
        }
        s.finish_load();
        s.on_fault(
            &FaultEvent {
                at: SimTime(0),
                node: 1,
                kind: FaultKind::Crash,
            },
            &mut engine,
        );
        for seq in 100..200 {
            let record = record_for_seq(seq);
            s.plan_op(0, &Operation::Insert { record }, &mut engine);
        }
        // The drain invariant itself is asserted inside on_fault(Restart).
        s.on_fault(
            &FaultEvent {
                at: SimTime(0),
                node: 1,
                kind: FaultKind::Restart,
            },
            &mut engine,
        );
        let queued = s.hint_audit.queued(1);
        assert!(queued > 0, "crash window must have queued hints");
        assert_eq!(s.hint_audit.replayed(1), queued);
        let events = s.hint_audit.events();
        let replay = events
            .iter()
            .position(|e| matches!(e.kind, HintEventKind::Replayed { .. }))
            .expect("replay recorded");
        assert!(
            events[..replay]
                .iter()
                .all(|e| e.kind == HintEventKind::Queued && e.node == 1),
            "every hint must be queued before the replay"
        );
        engine.run_to_idle();
    }

    #[test]
    fn reads_fail_over_to_a_live_replica() {
        use apm_sim::{FaultEvent, FaultKind, SimTime};
        let mut engine = Engine::new();
        let ctx = StoreCtx::new(&mut engine, ClusterSpec::cluster_m(), 3, 1, 0.01, 3);
        let mut s = CassandraStore::new(
            ctx,
            CassandraConfig {
                replication: 2,
                ..Default::default()
            },
        );
        for seq in 0..200 {
            s.load(&record_for_seq(seq));
        }
        s.finish_load();
        s.on_fault(
            &FaultEvent {
                at: SimTime(0),
                node: 0,
                kind: FaultKind::Crash,
            },
            &mut engine,
        );
        // Every key primarily owned by node 0 must still be Found via its
        // second replica.
        for seq in 0..200 {
            let r = record_for_seq(seq);
            let (outcome, _) = s.plan_op(0, &Operation::Read { key: r.key }, &mut engine);
            assert_eq!(
                outcome,
                OpOutcome::Found(r),
                "seq {seq} lost during single-node crash"
            );
        }
    }

    #[test]
    fn replication_writes_to_multiple_nodes() {
        let mut engine = Engine::new();
        let ctx = StoreCtx::new(&mut engine, ClusterSpec::cluster_m(), 3, 1, 0.01, 3);
        let mut s = CassandraStore::new(
            ctx,
            CassandraConfig {
                replication: 2,
                ..Default::default()
            },
        );
        for seq in 0..300 {
            s.load(&record_for_seq(seq));
        }
        let total: u64 = s.nodes.iter().map(|n| n.lsm.record_count()).sum();
        assert_eq!(total, 600, "rf=2 must store each record twice");
    }
}
