//! The VoltDB-like store: partitioned in-memory serial executors.
//!
//! §4.5: the database is split into disjoint partitions, each owned by a
//! single-threaded *site* (6 per host, the paper's setting); stored
//! procedures execute serially without locks. Single-partition
//! transactions (read/insert/update by key) run at one site;
//! scans are multi-partition transactions coordinated across all sites.
//!
//! The multi-node cliff (§5.1: "all configurations that we tested showed
//! a slow-down for multiple nodes ... the synchronous querying in YCSB is
//! not suitable for a distributed VoltDB configuration"): VoltDB 2.x
//! establishes a *global transaction order*; every transaction passes a
//! cluster-wide sequencing stage whose cost grows with the number of
//! nodes to coordinate. With synchronous clients this stage is on every
//! request's critical path, so aggregate throughput *falls* as nodes are
//! added — reproduced here by a capacity-1 "global initiator" resource
//! whose per-transaction service is proportional to the node count.

use crate::api::{round_trip_plan, CostModel, DistributedStore, StoreCtx};
use crate::routing::SiteMap;
use apm_core::ops::{OpOutcome, Operation};
use apm_core::record::Record;
use apm_core::snap::{SnapError, SnapReader, SnapWriter};
use apm_sim::kernel::ResourceId;
use apm_sim::{Engine, Plan, SimDuration, Step};
use apm_storage::partition::PartitionTable;

/// Stored-procedure execution cost at a site. ~115 µs per invocation
/// lands single-node throughput at ≈45–50 K ops/s on 6 sites (Fig 3/6:
/// just below Redis for reads, best for RW).
const PROC_COST: CostModel = CostModel {
    base_ns: 105_000,
    per_probe_ns: 2_000,
    per_byte_ns: 20,
};
/// Multi-partition fragment cost per site (scan fragment).
const FRAGMENT_COST: CostModel = CostModel {
    base_ns: 160_000,
    per_probe_ns: 2_000,
    per_byte_ns: 20,
};
/// Client-side cost per call (VoltDB wire protocol is lean).
const CLIENT_CPU: SimDuration = SimDuration::from_micros(15);
/// Per-transaction global ordering cost per cluster node (n > 1). At
/// 20 µs × n on a serial initiator the cluster tops out at 1/(20 µs × n):
/// ≈25 K at 2 nodes, ≈6 K at 8 — the measured decline.
const ORDERING_NS_PER_NODE: u64 = 20_000;
/// Wire sizes.
const REQ_BYTES: u64 = 90;
const RESP_READ_BYTES: u64 = 130;
const RESP_WRITE_BYTES: u64 = 40;

/// The store.
pub struct VoltDbStore {
    // Construction-time config/topology; not part of the snapshot stream.
    ctx: StoreCtx, // audit:allow(snap-drift)
    map: SiteMap,  // audit:allow(snap-drift)
    /// One serial executor resource per site (engine handles are stable
    /// across restore — the engine snapshots resources itself).
    site_res: Vec<ResourceId>, // audit:allow(snap-drift)
    /// One partition table per site (real data).
    partitions: Vec<PartitionTable>,
    /// Global transaction initiator/sequencer (meaningful when nodes > 1).
    /// Engine handle, stable across restore.
    initiator: ResourceId, // audit:allow(snap-drift)
}

impl VoltDbStore {
    /// Creates the store: 6 sites per host.
    pub fn new(ctx: StoreCtx, engine: &mut Engine) -> VoltDbStore {
        let map = SiteMap::new(ctx.node_count());
        let site_res = (0..map.sites())
            .map(|s| engine.add_resource(format!("voltdb.site{s}"), 1))
            .collect();
        let partitions = (0..map.sites()).map(|_| PartitionTable::new()).collect();
        let initiator = engine.add_resource("voltdb.initiator", 1);
        VoltDbStore {
            ctx,
            map,
            site_res,
            partitions,
            initiator,
        }
    }

    fn ordering_steps(&self, multi_partition: bool) -> Vec<Step> {
        let n = self.ctx.node_count() as u64;
        if n <= 1 {
            return Vec::new();
        }
        let factor = if multi_partition { 2 } else { 1 };
        vec![
            // Sequencing round: the initiator touches every node.
            Step::Acquire {
                resource: self.initiator,
                service: SimDuration::from_nanos(ORDERING_NS_PER_NODE * n * factor),
            },
            Step::Delay(self.ctx.cluster.net.one_way_latency),
        ]
    }

    fn single_partition_plan(
        &mut self,
        client: u32,
        key: &apm_core::record::MetricKey,
        write: Option<&Record>,
    ) -> (OpOutcome, Plan) {
        let site = self.map.site(key);
        let node = site / self.map.sites_per_host;
        let (outcome, receipt) = match write {
            Some(record) => {
                let receipt = self.partitions[site].insert(record.key, record.fields);
                (OpOutcome::Done, receipt)
            }
            None => {
                let (found, receipt) = self.partitions[site].get(key);
                let outcome = match found {
                    Some(fields) => OpOutcome::Found(Record { key: *key, fields }),
                    None => OpOutcome::Missing,
                };
                (outcome, receipt)
            }
        };
        let mut server = self.ordering_steps(false);
        server.push(Step::Acquire {
            resource: self.site_res[site],
            service: PROC_COST.cpu(&receipt),
        });
        let resp = if write.is_some() {
            RESP_WRITE_BYTES
        } else {
            RESP_READ_BYTES
        };
        let plan = round_trip_plan(
            &self.ctx,
            client,
            &self.ctx.servers[node],
            CLIENT_CPU,
            REQ_BYTES,
            resp,
            server,
        );
        (outcome, plan)
    }

    fn scan_plan(
        &mut self,
        client: u32,
        start: &apm_core::record::MetricKey,
        len: usize,
    ) -> (OpOutcome, Plan) {
        // Multi-partition transaction: a coordinator site distributes the
        // fragment to every site, merges, and responds.
        let coordinator_site = self.map.site(start);
        let coordinator_node = coordinator_site / self.map.sites_per_host;
        let net = self.ctx.cluster.net;
        let mut branches = Vec::with_capacity(self.map.sites());
        let mut total = 0usize;
        let mut merged: Vec<(apm_core::record::MetricKey, apm_core::record::FieldValues)> =
            Vec::new();
        for site in 0..self.map.sites() {
            let (rows, receipt) = self.partitions[site].scan(start, len);
            let row_count = rows.len();
            total += row_count;
            merged.extend(rows);
            let node = site / self.map.sites_per_host;
            let mut steps = Vec::new();
            if node != coordinator_node {
                steps.push(Step::Delay(net.one_way_latency));
            }
            steps.push(Step::Acquire {
                resource: self.site_res[site],
                service: FRAGMENT_COST.cpu(&receipt),
            });
            if node != coordinator_node {
                steps.push(Step::Acquire {
                    resource: self.ctx.servers[node].nic,
                    service: net.transfer(RESP_READ_BYTES * row_count.max(1) as u64),
                });
                steps.push(Step::Delay(net.one_way_latency));
            }
            branches.push(Plan(steps));
        }
        merged.sort_unstable_by_key(|(k, _)| *k);
        merged.truncate(len);
        let mut server = self.ordering_steps(true);
        server.push(Step::Join {
            branches,
            need: self.map.sites(),
        });
        // Coordinator merge.
        server.push(Step::Acquire {
            resource: self.ctx.servers[coordinator_node].cpu,
            service: SimDuration::from_nanos(20_000 + 500 * total as u64),
        });
        let plan = round_trip_plan(
            &self.ctx,
            client,
            &self.ctx.servers[coordinator_node],
            CLIENT_CPU,
            REQ_BYTES,
            RESP_READ_BYTES * merged.len().max(1) as u64,
            server,
        );
        (OpOutcome::Scanned(merged.len()), plan)
    }
}

impl DistributedStore for VoltDbStore {
    fn name(&self) -> &'static str {
        "voltdb"
    }

    fn ctx(&self) -> &StoreCtx {
        &self.ctx
    }

    fn load(&mut self, record: &Record) {
        let site = self.map.site(&record.key);
        self.partitions[site].insert(record.key, record.fields);
    }

    fn plan_op(&mut self, client: u32, op: &Operation, _engine: &mut Engine) -> (OpOutcome, Plan) {
        match op {
            Operation::Read { key } => self.single_partition_plan(client, &key.clone(), None),
            Operation::Insert { record } | Operation::Update { record } => {
                let record = *record;
                self.single_partition_plan(client, &record.key.clone(), Some(&record))
            }
            Operation::Scan { start, len } => self.scan_plan(client, &start.clone(), *len),
        }
    }

    fn disk_bytes_per_node(&self) -> Option<u64> {
        // In-memory store (§5.7 omits it from the disk usage figure).
        None
    }

    fn snap_state(&self, w: &mut SnapWriter) {
        w.put(&self.partitions);
    }

    fn restore_state(&mut self, r: &mut SnapReader, _engine: &mut Engine) -> Result<(), SnapError> {
        self.partitions = r.get()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_benchmark, RunConfig};
    use apm_core::driver::ClientConfig;
    use apm_core::keyspace::record_for_seq;
    use apm_core::ops::OpKind;
    use apm_core::workload::Workload;
    use apm_sim::{ClusterSpec, FaultSchedule};

    fn quick_run(nodes: u32, workload: Workload) -> crate::runner::RunResult {
        let mut engine = Engine::new();
        let ctx = StoreCtx::new(
            &mut engine,
            ClusterSpec::cluster_m(),
            nodes,
            StoreCtx::standard_client_machines(nodes),
            0.01,
            17,
        );
        let mut s = VoltDbStore::new(ctx, &mut engine);
        let config = RunConfig {
            workload,
            client: ClientConfig::cluster_m(nodes).with_window(0.5, 3.0),
            records_per_node: 20_000,
            nodes,
            seed: 3,
            event_at_secs: None,
            faults: FaultSchedule::none(),
            op_deadline: None,
            telemetry_window_secs: None,
            resilience: None,
            checkpoints: None,
        };
        run_benchmark(&mut engine, &mut s, &config)
    }

    #[test]
    fn data_lands_in_the_owning_partition() {
        let mut engine = Engine::new();
        let ctx = StoreCtx::new(&mut engine, ClusterSpec::cluster_m(), 2, 1, 0.01, 17);
        let mut s = VoltDbStore::new(ctx, &mut engine);
        for seq in 0..1_000 {
            s.load(&record_for_seq(seq));
        }
        let total: usize = s.partitions.iter().map(PartitionTable::len).sum();
        assert_eq!(total, 1_000);
        assert_eq!(s.partitions.len(), 12, "6 sites per host × 2 hosts");
        // Reads find their records.
        let r = record_for_seq(123);
        let (outcome, _) = s.plan_op(0, &Operation::Read { key: r.key }, &mut engine);
        assert_eq!(outcome, OpOutcome::Found(r));
    }

    #[test]
    fn single_node_throughput_is_high() {
        // Fig 3/6: VoltDB single-node ≈45-55 K ops/s, second to Redis for
        // reads and best for RW.
        let t = quick_run(1, Workload::rw()).throughput();
        assert!((35_000.0..65_000.0).contains(&t), "voltdb 1-node RW: {t}");
    }

    #[test]
    fn throughput_declines_with_more_nodes() {
        // §5.1: "For VoltDB, all configurations that we tested showed a
        // slow-down for multiple nodes."
        let one = quick_run(1, Workload::r()).throughput();
        let two = quick_run(2, Workload::r()).throughput();
        let four = quick_run(4, Workload::r()).throughput();
        assert!(two < one * 0.8, "2 nodes must be slower: {two} vs {one}");
        assert!(four < two, "4 nodes must be slower still: {four} vs {two}");
    }

    #[test]
    fn latency_becomes_prohibitive_beyond_four_nodes() {
        // Fig 7/footnote 8: "the prohibitive latency of VoltDB above 4
        // nodes".
        let result = quick_run(8, Workload::r());
        let lat = result.mean_latency_ms(OpKind::Read).unwrap();
        assert!(lat > 25.0, "8-node latency should be prohibitive: {lat} ms");
    }

    #[test]
    fn scans_return_correct_global_windows() {
        let mut engine = Engine::new();
        let ctx = StoreCtx::new(&mut engine, ClusterSpec::cluster_m(), 3, 1, 0.01, 17);
        let mut s = VoltDbStore::new(ctx, &mut engine);
        for seq in 0..3_000 {
            s.load(&record_for_seq(seq));
        }
        let mut keys: Vec<_> = (0..3_000).map(|q| record_for_seq(q).key).collect();
        keys.sort();
        let (outcome, plan) = s.plan_op(
            0,
            &Operation::Scan {
                start: keys[0],
                len: 50,
            },
            &mut engine,
        );
        assert_eq!(outcome, OpOutcome::Scanned(50));
        assert!(plan.total_steps() >= 18, "multi-partition fan-out expected");
    }

    #[test]
    fn single_partition_ops_skip_global_ordering_on_one_node() {
        let mut engine = Engine::new();
        let ctx = StoreCtx::new(&mut engine, ClusterSpec::cluster_m(), 1, 1, 0.01, 17);
        let mut s = VoltDbStore::new(ctx, &mut engine);
        let r = record_for_seq(1);
        let (_, plan) = s.plan_op(0, &Operation::Insert { record: r }, &mut engine);
        // No initiator step on a single node: plan = client cpu + 4 nic
        // hops + 2 delays + site.
        assert!(
            plan.total_steps() <= 8,
            "unexpected ordering steps: {}",
            plan.total_steps()
        );
    }
}
