//! The Redis-like store: independent single-threaded in-memory instances
//! behind a Jedis-style client-side sharding ring.
//!
//! §4.4/§5.1: the Redis cluster version was unusable in 2011, so the
//! paper deployed one standalone instance per node and let the Jedis
//! library shard keys — "considerable advantage ... since there is no
//! interaction between the Redis instances", but also the study's big
//! failure mode: "the data distribution is unbalanced. This actually
//! caused one Redis node to consistently run out of memory in the 12 node
//! configuration" (both Murmur and MD5 ring hashes, footnote 7).
//!
//! Mechanisms modelled:
//! * a capacity-1 event-loop resource per instance (Redis is
//!   single-threaded) — service ≈ 18 µs/command ⇒ ~55 K ops/s/instance,
//!   the best single-node read throughput in Fig 3;
//! * the real Jedis ring (160 virtual nodes, MurmurHash64A) — its
//!   imbalance caps multi-node scaling at the hottest shard;
//! * a physical memory budget per instance — when the ring overloads the
//!   hottest shard it first *swaps* (every command slows 5×, gating the
//!   whole closed loop) and finally rejects writes;
//! * fewer client threads (§6: "we were forced to use a smaller number
//!   of threads") but twice the client machines (§5.1).

use crate::api::{round_trip_plan, CostModel, DistributedStore, StoreCtx};
use crate::routing::{JedisHash, JedisRing};
use apm_core::ops::{OpOutcome, Operation, RejectReason};
use apm_core::record::Record;
use apm_core::snap::{SnapError, SnapReader, SnapWriter};
use apm_sim::kernel::ResourceId;
use apm_sim::{Engine, Plan, SimDuration, Step};
use apm_storage::hashstore::HashStore;

/// Command execution on the event loop: ~18 µs for GET/SET of a 75-byte
/// record ⇒ ≈55 K ops/s per instance (Fig 3's >50 K single-node reads).
const CMD_COST: CostModel = CostModel {
    base_ns: 15_000,
    per_probe_ns: 1_200,
    per_byte_ns: 8,
};
/// Client-side Jedis cost per command.
const CLIENT_CPU: SimDuration = SimDuration::from_micros(15);
/// Wire sizes (RESP protocol framing).
const REQ_BYTES: u64 = 110;
const RESP_READ_BYTES: u64 = 140;
const RESP_WRITE_BYTES: u64 = 30;
/// Client thread budget. §6: every YCSB thread must hold a connection to
/// *every* Redis instance, so the total thread count could barely grow
/// with the cluster ("we were forced to use a smaller number of
/// threads") — 64 threads at one node, plus a small increment per added
/// shard. This is what keeps Redis's scaling sub-linear in Fig 3.
const BASE_CONNECTIONS: u32 = 64;
const EXTRA_CONNECTIONS_PER_NODE: u32 = 8;
/// Memory headroom each identically-sized instance has over the fleet's
/// *mean* data volume: 6.5 %. The faithfully rebuilt Jedis ring gives the
/// hottest of n shards 1.02×/1.05×/1.10×/1.08× the mean at n = 2/4/8/12,
/// so on small clusters every shard fits while the larger clusters push
/// their hottest shard past physical memory into swap — the §5.1
/// incident ("one Redis node to consistently run out of memory in the 12
/// node configuration"; our ring's worst-case skew peaks at 8 nodes, so
/// the overflow appears from 8 up — noted in EXPERIMENTS.md).
const SKEW_HEADROOM: f64 = 1.065;
/// Hard allocation limit relative to the planned per-node load, for the
/// terminal `-OOM` phase when a deployment is simply overfilled.
const BUDGET_HEADROOM: f64 = 1.065;
/// Service-time multiplier once an instance's data exceeds its physical
/// budget: the node starts swapping and every command stalls on page
/// faults, gating the whole closed loop at the hot shard.
const SWAP_FACTOR: u64 = 2;
/// Beyond this multiple of the budget, allocation fails outright and the
/// instance rejects writes (`-OOM`-style, the terminal phase).
const HARD_OOM_FACTOR: f64 = 1.25;

struct Instance {
    store: HashStore,
    event_loop: ResourceId,
}

/// The store.
pub struct RedisStore {
    // Construction-time config/topology; not part of the snapshot stream
    // (sharded Jedis has no rebalancing — the ring never changes).
    ctx: StoreCtx,   // audit:allow(snap-drift)
    ring: JedisRing, // audit:allow(snap-drift)
    hash: JedisHash, // audit:allow(snap-drift)
    instances: Vec<Instance>,
    /// Hard allocation limit per instance (kept to rebuild a wiped
    /// instance after a crash). Construction-time config.
    hard_limit: u64, // audit:allow(snap-drift)
    /// Load-phase inserts refused by a full instance (the §5.1 incident).
    load_rejections: u64,
}

impl RedisStore {
    /// Client machines for `nodes` servers: Redis "had to double the
    /// number of machines for the YCSB clients" (§5.1).
    pub fn client_machines(nodes: u32) -> u32 {
        (StoreCtx::standard_client_machines(nodes) * 2).min(10)
    }

    /// Creates the store; one instance per server node.
    pub fn new(ctx: StoreCtx, engine: &mut Engine, hash: JedisHash) -> RedisStore {
        let planned_records_per_node = 10_000_000.0 * ctx.scale;
        let hard_limit = (planned_records_per_node
            * HashStore::bytes_per_record() as f64
            * BUDGET_HEADROOM
            * HARD_OOM_FACTOR) as u64;
        let instances = (0..ctx.node_count())
            .map(|i| Instance {
                store: HashStore::new(Some(hard_limit)),
                event_loop: engine.add_resource(format!("redis{i}.eventloop"), 1),
            })
            .collect();
        let ring = JedisRing::new(ctx.node_count(), hash);
        #[cfg(feature = "audit")]
        crate::audit::assert_ring_weight_conserved(
            &ring.vnode_weights(),
            crate::routing::JEDIS_VNODES as u64,
        );
        RedisStore {
            ring,
            hash,
            ctx,
            instances,
            hard_limit,
            load_rejections: 0,
        }
    }

    fn shard(&self, key: &apm_core::record::MetricKey) -> usize {
        self.ring.route_with(self.hash, key)
    }

    fn command_plan(
        &self,
        client: u32,
        shard: usize,
        service: SimDuration,
        resp_bytes: u64,
    ) -> Plan {
        round_trip_plan(
            &self.ctx,
            client,
            &self.ctx.servers[shard],
            CLIENT_CPU,
            REQ_BYTES,
            resp_bytes,
            vec![Step::Acquire {
                resource: self.instances[shard].event_loop,
                service,
            }],
        )
    }

    /// Memory fill fraction of the hottest instance (diagnostics).
    pub fn hottest_fill(&self) -> f64 {
        self.instances
            .iter()
            .map(|i| i.store.mem_fraction())
            .fold(0.0, f64::max)
    }

    /// Load-phase inserts refused because an instance was full.
    pub fn load_rejections(&self) -> u64 {
        self.load_rejections
    }

    /// Mean memory footprint across instances.
    fn mean_mem(&self) -> f64 {
        let total: u64 = self.instances.iter().map(|i| i.store.mem_bytes()).sum();
        total as f64 / self.instances.len() as f64
    }

    /// Whether `shard` is past its physical memory (identically-sized
    /// instances hold [`SKEW_HEADROOM`] over the fleet mean, so the shard
    /// the ring overloads beyond that swaps).
    fn is_swapping(&self, shard: usize) -> bool {
        self.instances.len() > 1
            && self.instances[shard].store.mem_bytes() as f64 > self.mean_mem() * SKEW_HEADROOM
    }

    fn service(&self, shard: usize, base: SimDuration) -> SimDuration {
        if self.is_swapping(shard) {
            base.saturating_mul(SWAP_FACTOR)
        } else {
            base
        }
    }

    /// Number of instances currently past their physical memory (swapping).
    pub fn swapping_instances(&self) -> usize {
        (0..self.instances.len())
            .filter(|&i| self.is_swapping(i))
            .count()
    }
}

impl DistributedStore for RedisStore {
    fn name(&self) -> &'static str {
        "redis"
    }

    fn ctx(&self) -> &StoreCtx {
        &self.ctx
    }

    fn load(&mut self, record: &Record) {
        let shard = self.shard(&record.key);
        // Loads past the hard allocation limit are dropped, exactly like
        // the paper's OOM-ing node (reads of those keys will miss).
        if self.instances[shard]
            .store
            .insert(record.key, record.fields)
            .is_err()
        {
            self.load_rejections += 1;
        }
    }

    fn plan_op(&mut self, client: u32, op: &Operation, _engine: &mut Engine) -> (OpOutcome, Plan) {
        match op {
            Operation::Read { key } => {
                let shard = self.shard(key);
                let (found, receipt) = self.instances[shard].store.get(key);
                let outcome = match found {
                    Some(fields) => OpOutcome::Found(Record { key: *key, fields }),
                    None => OpOutcome::Missing,
                };
                let service = self.service(shard, CMD_COST.cpu(&receipt));
                (
                    outcome,
                    self.command_plan(client, shard, service, RESP_READ_BYTES),
                )
            }
            Operation::Insert { record } | Operation::Update { record } => {
                let shard = self.shard(&record.key);
                match self.instances[shard]
                    .store
                    .insert(record.key, record.fields)
                {
                    Ok(receipt) => {
                        let service = self.service(shard, CMD_COST.cpu(&receipt));
                        (
                            OpOutcome::Done,
                            self.command_plan(client, shard, service, RESP_WRITE_BYTES),
                        )
                    }
                    Err(_) => {
                        // `-OOM command not allowed`: the server still
                        // parses and answers, the client sees an error.
                        let service =
                            self.service(shard, SimDuration::from_nanos(CMD_COST.base_ns));
                        (
                            OpOutcome::Rejected(RejectReason::OutOfMemory),
                            self.command_plan(client, shard, service, RESP_WRITE_BYTES),
                        )
                    }
                }
            }
            Operation::Scan { start, len } => {
                // ZRANGEBYLEX + per-key HGETALL, fanned out to every
                // shard (hash sharding scatters a key range everywhere),
                // merged client-side. The slowest shard gates.
                let mut branches = Vec::with_capacity(self.instances.len());
                let mut total = 0usize;
                for (shard, instance) in self.instances.iter().enumerate() {
                    let (rows, receipt) = instance.store.scan(start, *len);
                    total += rows.len();
                    let net = &self.ctx.cluster.net;
                    let resp = RESP_READ_BYTES * rows.len().max(1) as u64;
                    branches.push(Plan(vec![
                        Step::Acquire {
                            resource: self.ctx.client_machine(client).nic,
                            service: net.transfer(REQ_BYTES),
                        },
                        Step::Delay(net.one_way_latency),
                        Step::Acquire {
                            resource: self.ctx.servers[shard].nic,
                            service: net.transfer(REQ_BYTES),
                        },
                        Step::Acquire {
                            resource: self.instances[shard].event_loop,
                            service: self.service(shard, CMD_COST.cpu(&receipt)),
                        },
                        Step::Acquire {
                            resource: self.ctx.servers[shard].nic,
                            service: net.transfer(resp),
                        },
                        Step::Delay(net.one_way_latency),
                        Step::Acquire {
                            resource: self.ctx.client_machine(client).nic,
                            service: net.transfer(resp),
                        },
                    ]));
                }
                let client_res = self.ctx.client_machine(client);
                let plan = Plan(vec![
                    Step::Acquire {
                        resource: client_res.cpu,
                        service: CLIENT_CPU,
                    },
                    Step::Join {
                        branches,
                        need: self.instances.len(),
                    },
                    // Client-side merge of n × len candidates.
                    Step::Acquire {
                        resource: client_res.cpu,
                        service: SimDuration::from_nanos(2_000 + 300 * total as u64),
                    },
                ]);
                (OpOutcome::Scanned(total.min(*len)), plan)
            }
        }
    }

    fn on_fault(&mut self, event: &apm_sim::FaultEvent, engine: &mut Engine) {
        use apm_sim::{FailMode, FaultKind};
        crate::api::apply_node_fault(&self.ctx, engine, event);
        if event.node >= self.instances.len() {
            return;
        }
        // The event loop is a store-private resource, so the generic
        // node-fault handler does not know about it.
        let event_loop = self.instances[event.node].event_loop;
        match event.kind {
            FaultKind::Crash => {
                engine.fail_resource(
                    event_loop,
                    FailMode::Reject {
                        latency: apm_sim::fault::CRASH_ERROR_LATENCY,
                    },
                );
                // No persistence in the paper's deployment: the shard's
                // dataset dies with the process. Reads of these keys miss
                // forever after — real data loss, not just downtime.
                self.instances[event.node].store = HashStore::new(Some(self.hard_limit));
            }
            FaultKind::Restart => {
                engine.restore_resource(event_loop);
                engine.set_resource_slowdown(event_loop, 1);
            }
            FaultKind::FailSlow { factor } => {
                engine.set_resource_slowdown(event_loop, factor.max(1));
            }
            FaultKind::FailSlowEnd => {
                engine.set_resource_slowdown(event_loop, 1);
            }
            // Disk faults and partitions touch only the node-level
            // resources, which `apply_node_fault` already covered; the
            // event loop itself is unaffected.
            FaultKind::DiskSlow { .. }
            | FaultKind::DiskRestore
            | FaultKind::PartitionStart
            | FaultKind::PartitionEnd => {}
        }
    }

    fn plan_target(&self, op: &Operation) -> Option<usize> {
        // Sharded Jedis pins every key to exactly one instance, so the
        // circuit breaker shards on the ring route.
        Some(self.shard(op.routing_key()))
    }

    fn connection_cap(&self) -> Option<u32> {
        let nodes = self.ctx.node_count() as u32;
        Some(BASE_CONNECTIONS + EXTRA_CONNECTIONS_PER_NODE * (nodes - 1))
    }

    fn disk_bytes_per_node(&self) -> Option<u64> {
        // §5.7: "Redis and VoltDB do not store the data on disk".
        None
    }

    fn snap_state(&self, w: &mut SnapWriter) {
        for instance in &self.instances {
            instance.store.snap_state(w);
        }
        w.put_u64(self.load_rejections);
    }

    fn restore_state(&mut self, r: &mut SnapReader, _engine: &mut Engine) -> Result<(), SnapError> {
        for instance in &mut self.instances {
            instance.store.restore_state(r)?;
        }
        self.load_rejections = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_benchmark, RunConfig};
    use apm_core::driver::ClientConfig;
    use apm_core::keyspace::record_for_seq;
    use apm_core::ops::OpKind;
    use apm_core::workload::Workload;
    use apm_sim::{ClusterSpec, FaultSchedule};

    fn make(engine: &mut Engine, nodes: u32, scale: f64) -> RedisStore {
        let ctx = StoreCtx::new(
            engine,
            ClusterSpec::cluster_m(),
            nodes,
            RedisStore::client_machines(nodes),
            scale,
            13,
        );
        RedisStore::new(ctx, engine, JedisHash::Murmur)
    }

    fn quick_run(nodes: u32, workload: Workload, records: u64) -> crate::runner::RunResult {
        let mut engine = Engine::new();
        let mut s = make(&mut engine, nodes, 0.01);
        let config = RunConfig {
            workload,
            client: ClientConfig::cluster_m(nodes).with_window(0.5, 3.0),
            records_per_node: records,
            nodes,
            seed: 7,
            event_at_secs: None,
            faults: FaultSchedule::none(),
            op_deadline: None,
            telemetry_window_secs: None,
            resilience: None,
            checkpoints: None,
        };
        run_benchmark(&mut engine, &mut s, &config)
    }

    #[test]
    fn single_node_read_throughput_tops_50k() {
        // Fig 3: "Redis has the highest throughput (more than 50K ops/sec)".
        let t = quick_run(1, Workload::r(), 20_000).throughput();
        assert!(t > 45_000.0, "redis 1-node R too slow: {t}");
        assert!(t < 75_000.0, "redis 1-node R implausible: {t}");
    }

    #[test]
    fn read_latency_is_the_lowest_band() {
        // Fig 4: Redis has "the best latency among all systems" (~1 ms).
        let result = quick_run(1, Workload::r(), 20_000);
        let lat = result.mean_latency_ms(OpKind::Read).unwrap();
        assert!(lat < 2.5, "redis read latency too high: {lat} ms");
    }

    #[test]
    fn scaling_is_sublinear_due_to_ring_imbalance() {
        // Fig 3: Redis "does not show the expected scalability".
        let one = quick_run(1, Workload::r(), 20_000).throughput();
        let eight = quick_run(8, Workload::r(), 20_000).throughput();
        let speedup = eight / one;
        assert!(speedup > 3.0, "some scaling expected: {speedup:.2}");
        assert!(speedup < 7.5, "imbalance must cost scaling: {speedup:.2}");
    }

    #[test]
    fn hottest_shard_oom_occurs_on_large_clusters_only() {
        // §5.1: "one Redis node to consistently run out of memory in the
        // 12 node configuration". Per-node record count is constant, so
        // the trigger is the ring's worst-case share: on small clusters
        // every shard fits; on the large ones the hottest shard exceeds
        // its physical budget and starts swapping.
        let swap_state = |nodes: u32| {
            let mut engine = Engine::new();
            let mut s = make(&mut engine, nodes, 0.002);
            let per_node = (10_000_000.0 * 0.002) as u64;
            for seq in 0..per_node * u64::from(nodes) {
                s.load(&record_for_seq(seq));
            }
            (
                s.swapping_instances(),
                s.load_rejections(),
                s.hottest_fill(),
            )
        };
        let (swap2, rej2, fill2) = swap_state(2);
        let (swap4, rej4, fill4) = swap_state(4);
        let (swap12, _rej12, fill12) = swap_state(12);
        assert_eq!(
            (swap2, rej2),
            (0, 0),
            "2-node hottest shard must fit (fill {fill2:.3})"
        );
        assert_eq!(
            (swap4, rej4),
            (0, 0),
            "4-node hottest shard must fit (fill {fill4:.3})"
        );
        assert!(
            swap12 >= 1,
            "12-node hottest shard must swap (fill {fill12:.3})"
        );
    }

    #[test]
    fn swapping_shard_slows_the_whole_cluster() {
        // The §5.1 incident's throughput effect: the convoy at the
        // swapping shard gates aggregate throughput well below linear.
        let mut engine = Engine::new();
        let mut s = make(&mut engine, 12, 0.002);
        let config = RunConfig {
            workload: Workload::r(),
            client: ClientConfig::cluster_m(12).with_window(0.5, 3.0),
            records_per_node: 20_000,
            nodes: 12,
            seed: 7,
            event_at_secs: None,
            faults: FaultSchedule::none(),
            op_deadline: None,
            telemetry_window_secs: None,
            resilience: None,
            checkpoints: None,
        };
        let result = run_benchmark(&mut engine, &mut s, &config);
        assert!(
            s.swapping_instances() >= 1,
            "setup must include a swapping shard"
        );
        let per_node = result.throughput() / 12.0;
        // A healthy instance sustains ~55 K; the convoy must pull the
        // per-node average far below that.
        assert!(
            per_node < 30_000.0,
            "swap convoy missing: {per_node:.0} ops/s/node"
        );
    }

    #[test]
    fn inserts_on_full_shard_are_rejected_but_run_continues() {
        let mut engine = Engine::new();
        let mut s = make(&mut engine, 12, 0.002);
        // Overfill: 30% beyond the paper load pushes the hottest shards
        // past the hard allocation limit.
        let config = RunConfig {
            workload: Workload::w(),
            client: ClientConfig::cluster_m(12).with_window(0.2, 1.0),
            records_per_node: 26_000,
            nodes: 12,
            seed: 7,
            event_at_secs: None,
            faults: FaultSchedule::none(),
            op_deadline: None,
            telemetry_window_secs: None,
            resilience: None,
            checkpoints: None,
        };
        let result = run_benchmark(&mut engine, &mut s, &config);
        assert!(s.load_rejections() > 0, "overfilled load must reject");
        assert!(result.throughput() > 0.0, "other shards keep serving");
    }

    #[test]
    fn scans_fan_out_and_return_global_window() {
        let mut engine = Engine::new();
        let mut s = make(&mut engine, 4, 0.01);
        for seq in 0..8_000 {
            s.load(&record_for_seq(seq));
        }
        let mut keys: Vec<_> = (0..8_000).map(|q| record_for_seq(q).key).collect();
        keys.sort();
        let (outcome, plan) = s.plan_op(
            0,
            &Operation::Scan {
                start: keys[100],
                len: 50,
            },
            &mut engine,
        );
        assert_eq!(outcome, OpOutcome::Scanned(50));
        // The fan-out must reference every shard's event loop.
        assert!(plan.total_steps() > 4 * 5, "expected a 4-way fan-out");
    }

    #[test]
    fn crash_wipes_the_shard_and_restart_does_not_bring_data_back() {
        use apm_sim::{FaultEvent, FaultKind, SimTime};
        let mut engine = Engine::new();
        let mut s = make(&mut engine, 4, 0.01);
        for seq in 0..2_000 {
            s.load(&record_for_seq(seq));
        }
        let victim = 1usize;
        let lost = s.instances[victim].store.len();
        assert!(lost > 0, "victim shard must own data");
        s.on_fault(
            &FaultEvent {
                at: SimTime(0),
                node: victim,
                kind: FaultKind::Crash,
            },
            &mut engine,
        );
        assert!(engine.resource_is_down(s.instances[victim].event_loop));
        assert_eq!(
            s.instances[victim].store.len(),
            0,
            "no persistence: data dies"
        );
        s.on_fault(
            &FaultEvent {
                at: SimTime(0),
                node: victim,
                kind: FaultKind::Restart,
            },
            &mut engine,
        );
        assert!(!engine.resource_is_down(s.instances[victim].event_loop));
        // The process is back but its keyspace is gone: reads miss.
        let mut misses = 0usize;
        for seq in 0..2_000 {
            let r = record_for_seq(seq);
            if s.shard(&r.key) == victim {
                let (outcome, _) = s.plan_op(0, &Operation::Read { key: r.key }, &mut engine);
                assert_eq!(outcome, OpOutcome::Missing, "seq {seq} should be lost");
                misses += 1;
            }
        }
        assert_eq!(misses, lost);
    }

    #[test]
    fn connection_cap_grows_only_slowly_with_node_count() {
        let mut engine = Engine::new();
        let s1 = make(&mut engine, 1, 0.01);
        assert_eq!(s1.connection_cap(), Some(64));
        let mut engine = Engine::new();
        let s12 = make(&mut engine, 12, 0.01);
        assert_eq!(
            s12.connection_cap(),
            Some(152),
            "§6: thread budget barely grows"
        );
        assert_eq!(s12.disk_bytes_per_node(), None);
    }
}
