//! Store-level invariant checking (`audit` feature).
//!
//! The kernel auditor (`apm_sim::audit`) checks event *mechanics* —
//! monotone time, FIFO tie-breaks, op conservation. This module is the
//! first store-*protocol* auditor the ROADMAP calls for: it rides along
//! inside a store and checks recovery invariants that span many events.
//!
//! Seeded check: **Cassandra hinted handoff drains**. While a replica is
//! down, coordinators queue its missed writes as hints; when the replica
//! rejoins, `replay_hints` must stream every queued hint back and leave
//! the queue empty. The auditor mirrors the span-tracing design of
//! `apm_sim::trace`: each hint transition is recorded as a
//! virtual-time-stamped [`HintEvent`], and the drain assertion is checked
//! against that evidence stream — queued and replayed totals must
//! balance per node, and the queue must be empty after a restore.
//!
//! Violations `panic!`, like every audit check: an undrained hint queue
//! means the recovery results are meaningless.

use crate::resilience::{breaker_transition_is_legal, BreakerState};
use apm_core::snap::{Snap, SnapError, SnapReader, SnapWriter};
use apm_sim::SimTime;

/// One hint lifecycle transition, stamped with the virtual clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HintEvent {
    /// Virtual time of the transition.
    pub at: SimTime,
    /// Replica node the hint belongs to.
    pub node: usize,
    /// Which transition happened.
    pub kind: HintEventKind,
}

/// Which hint transition a [`HintEvent`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HintEventKind {
    /// A coordinator queued one missed write for a down replica.
    Queued,
    /// A rejoining replica replayed `count` queued hints.
    Replayed {
        /// Hints streamed back in this replay.
        count: u64,
    },
}

/// Evidence stream and balance counters for hinted handoff; embedded in
/// the Cassandra store behind the `audit` feature.
#[derive(Clone, Debug, Default)]
pub struct HintAuditor {
    /// Every hint transition, in virtual-time order.
    events: Vec<HintEvent>,
    /// Hints queued per node over the run.
    queued: Vec<u64>,
    /// Hints replayed per node over the run.
    replayed: Vec<u64>,
}

impl HintAuditor {
    fn node_slot(counts: &mut Vec<u64>, node: usize) -> &mut u64 {
        if node >= counts.len() {
            counts.resize(node + 1, 0);
        }
        &mut counts[node]
    }

    /// Records one hint queued for a down `node`.
    pub fn on_queued(&mut self, at: SimTime, node: usize) {
        *Self::node_slot(&mut self.queued, node) += 1;
        self.events.push(HintEvent {
            at,
            node,
            kind: HintEventKind::Queued,
        });
    }

    /// Records a rejoining `node` replaying `count` hints.
    pub fn on_replayed(&mut self, at: SimTime, node: usize, count: u64) {
        *Self::node_slot(&mut self.replayed, node) += count;
        self.events.push(HintEvent {
            at,
            node,
            kind: HintEventKind::Replayed { count },
        });
    }

    /// Asserts the hinted-handoff drain invariant for `node` after a
    /// restore: the live queue must be empty and every hint ever queued
    /// must have been replayed exactly once.
    pub fn assert_drained(&self, node: usize, remaining: usize) {
        assert_eq!(
            remaining, 0,
            "store audit: node {node} rejoined with {remaining} hints still queued"
        );
        let queued = self.queued.get(node).copied().unwrap_or(0);
        let replayed = self.replayed.get(node).copied().unwrap_or(0);
        assert_eq!(
            queued, replayed,
            "store audit: node {node} queued {queued} hints but replayed {replayed}"
        );
    }

    /// The recorded evidence stream, in virtual-time order.
    pub fn events(&self) -> &[HintEvent] {
        &self.events
    }

    /// Total hints queued for `node` over the run.
    pub fn queued(&self, node: usize) -> u64 {
        self.queued.get(node).copied().unwrap_or(0)
    }

    /// Total hints replayed by `node` over the run.
    pub fn replayed(&self, node: usize) -> u64 {
        self.replayed.get(node).copied().unwrap_or(0)
    }
}

impl Snap for HintEventKind {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            HintEventKind::Queued => w.put_u8(0),
            HintEventKind::Replayed { count } => {
                w.put_u8(1);
                w.put_u64(*count);
            }
        }
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(HintEventKind::Queued),
            1 => Ok(HintEventKind::Replayed { count: r.u64()? }),
            tag => Err(SnapError::BadTag {
                what: "HintEventKind",
                tag: tag as u64,
            }),
        }
    }
}

impl Snap for HintEvent {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.at);
        w.put_u64(self.node as u64);
        w.put(&self.kind);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(HintEvent {
            at: r.get()?,
            node: r.u64()? as usize,
            kind: r.get()?,
        })
    }
}

impl Snap for HintAuditor {
    fn snap(&self, w: &mut SnapWriter) {
        w.put(&self.events);
        w.put(&self.queued);
        w.put(&self.replayed);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(HintAuditor {
            events: r.get()?,
            queued: r.get()?,
            replayed: r.get()?,
        })
    }
}

/// Watches the resilient driver's policy engine: every circuit-breaker
/// transition must be one the Closed→Open→HalfOpen machine can legally
/// make, and no logical op may retry past its configured budget.
/// Embedded in the driver's policy state behind the `audit` feature.
#[derive(Clone, Debug, Default)]
pub struct RetryAuditor {
    transitions: u64,
    retries: u64,
}

impl RetryAuditor {
    /// Records one breaker transition; panics if it is not legal.
    pub fn on_transition(&mut self, from: BreakerState, to: BreakerState) {
        assert!(
            breaker_transition_is_legal(from, to),
            "store audit: illegal breaker transition {from:?} -> {to:?}"
        );
        self.transitions += 1;
    }

    /// Records one retry as number `used` of a logical op; panics if the
    /// op has now retried past `budget`.
    pub fn on_retry(&mut self, used: u32, budget: u32) {
        assert!(
            used <= budget,
            "store audit: retry {used} exceeds the configured budget of {budget}"
        );
        self.retries += 1;
    }

    /// Breaker transitions observed.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Retries observed.
    pub fn retries(&self) -> u64 {
        self.retries
    }
}

impl Snap for RetryAuditor {
    fn snap(&self, w: &mut SnapWriter) {
        w.put_u64(self.transitions);
        w.put_u64(self.retries);
    }
    fn restore(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(RetryAuditor {
            transitions: r.u64()?,
            retries: r.u64()?,
        })
    }
}

/// Asserts HBase's region-reassignment map is a bijection from dead
/// region servers onto *distinct live* hosts: every reassigned region
/// server is actually down, its host is up, no two dead servers share a
/// host entry, and nothing maps to itself.
pub fn assert_region_reassignment_bijection(
    reassigned: &std::collections::BTreeMap<usize, usize>,
    down: &[bool],
) {
    let mut hosts = std::collections::BTreeSet::new();
    for (&dead, &host) in reassigned {
        assert!(
            down.get(dead).copied().unwrap_or(false),
            "store audit: live node {dead} has its regions reassigned"
        );
        assert!(
            !down.get(host).copied().unwrap_or(true),
            "store audit: regions of node {dead} assigned to down host {host}"
        );
        assert!(
            dead != host,
            "store audit: node {dead} reassigned to itself"
        );
        assert!(
            hosts.insert(host),
            "store audit: host {host} received two region reassignments"
        );
    }
}

/// Asserts the Redis client-side hash ring conserves weight: every shard
/// owns exactly `expected` virtual nodes on the ring (Jedis places a
/// fixed per-shard vnode count; losing or duplicating one would skew key
/// distribution silently).
pub fn assert_ring_weight_conserved(vnodes_per_shard: &[u64], expected: u64) {
    for (shard, &vnodes) in vnodes_per_shard.iter().enumerate() {
        assert_eq!(
            vnodes, expected,
            "store audit: shard {shard} owns {vnodes} vnodes, expected {expected}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_queue_and_replay_pass() {
        let mut a = HintAuditor::default();
        a.on_queued(SimTime(10), 1);
        a.on_queued(SimTime(20), 1);
        a.on_replayed(SimTime(30), 1, 2);
        a.assert_drained(1, 0);
        assert_eq!(a.queued(1), 2);
        assert_eq!(a.replayed(1), 2);
        assert_eq!(a.events().len(), 3);
    }

    #[test]
    #[should_panic(expected = "still queued")]
    fn live_queue_after_restore_panics() {
        HintAuditor::default().assert_drained(0, 3);
    }

    #[test]
    #[should_panic(expected = "queued 2 hints but replayed 1")]
    fn lost_hint_panics() {
        let mut a = HintAuditor::default();
        a.on_queued(SimTime(10), 0);
        a.on_queued(SimTime(11), 0);
        a.on_replayed(SimTime(20), 0, 1);
        a.assert_drained(0, 0);
    }

    #[test]
    fn nodes_are_tracked_independently() {
        let mut a = HintAuditor::default();
        a.on_queued(SimTime(5), 2);
        a.on_replayed(SimTime(9), 2, 1);
        a.assert_drained(2, 0);
        a.assert_drained(7, 0); // never-touched node is trivially drained
        assert_eq!(a.queued(0), 0);
    }

    #[test]
    fn legal_breaker_cycle_and_bounded_retries_pass() {
        use BreakerState::*;
        let mut a = RetryAuditor::default();
        for (from, to) in [
            (Closed, Open),
            (Open, HalfOpen),
            (HalfOpen, Open),
            (Open, HalfOpen),
            (HalfOpen, Closed),
        ] {
            a.on_transition(from, to);
        }
        a.on_retry(1, 3);
        a.on_retry(3, 3);
        assert_eq!(a.transitions(), 5);
        assert_eq!(a.retries(), 2);
    }

    #[test]
    #[should_panic(expected = "illegal breaker transition")]
    fn breaker_skipping_half_open_panics() {
        RetryAuditor::default().on_transition(BreakerState::Open, BreakerState::Closed);
    }

    #[test]
    #[should_panic(expected = "exceeds the configured budget")]
    fn retry_past_budget_panics() {
        RetryAuditor::default().on_retry(4, 3);
    }

    #[test]
    fn region_bijection_accepts_distinct_live_hosts() {
        let mut reassigned = std::collections::BTreeMap::new();
        reassigned.insert(0, 2);
        reassigned.insert(1, 3);
        assert_region_reassignment_bijection(&reassigned, &[true, true, false, false]);
        // Empty map is trivially a bijection.
        assert_region_reassignment_bijection(&std::collections::BTreeMap::new(), &[false]);
    }

    #[test]
    #[should_panic(expected = "received two region reassignments")]
    fn region_fan_in_panics() {
        let mut reassigned = std::collections::BTreeMap::new();
        reassigned.insert(0, 2);
        reassigned.insert(1, 2);
        assert_region_reassignment_bijection(&reassigned, &[true, true, false]);
    }

    #[test]
    #[should_panic(expected = "assigned to down host")]
    fn region_on_dead_host_panics() {
        let mut reassigned = std::collections::BTreeMap::new();
        reassigned.insert(0, 1);
        assert_region_reassignment_bijection(&reassigned, &[true, true]);
    }

    #[test]
    #[should_panic(expected = "live node 0 has its regions reassigned")]
    fn reassigning_a_live_node_panics() {
        let mut reassigned = std::collections::BTreeMap::new();
        reassigned.insert(0, 1);
        assert_region_reassignment_bijection(&reassigned, &[false, false]);
    }

    #[test]
    fn ring_weight_conservation_accepts_uniform_shards() {
        assert_ring_weight_conserved(&[160, 160, 160], 160);
    }

    #[test]
    #[should_panic(expected = "shard 1 owns 159 vnodes")]
    fn ring_weight_loss_panics() {
        assert_ring_weight_conserved(&[160, 159], 160);
    }
}
