//! Store-level invariant checking (`audit` feature).
//!
//! The kernel auditor (`apm_sim::audit`) checks event *mechanics* —
//! monotone time, FIFO tie-breaks, op conservation. This module is the
//! first store-*protocol* auditor the ROADMAP calls for: it rides along
//! inside a store and checks recovery invariants that span many events.
//!
//! Seeded check: **Cassandra hinted handoff drains**. While a replica is
//! down, coordinators queue its missed writes as hints; when the replica
//! rejoins, `replay_hints` must stream every queued hint back and leave
//! the queue empty. The auditor mirrors the span-tracing design of
//! `apm_sim::trace`: each hint transition is recorded as a
//! virtual-time-stamped [`HintEvent`], and the drain assertion is checked
//! against that evidence stream — queued and replayed totals must
//! balance per node, and the queue must be empty after a restore.
//!
//! Violations `panic!`, like every audit check: an undrained hint queue
//! means the recovery results are meaningless.

use apm_sim::SimTime;

/// One hint lifecycle transition, stamped with the virtual clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HintEvent {
    /// Virtual time of the transition.
    pub at: SimTime,
    /// Replica node the hint belongs to.
    pub node: usize,
    /// Which transition happened.
    pub kind: HintEventKind,
}

/// Which hint transition a [`HintEvent`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HintEventKind {
    /// A coordinator queued one missed write for a down replica.
    Queued,
    /// A rejoining replica replayed `count` queued hints.
    Replayed {
        /// Hints streamed back in this replay.
        count: u64,
    },
}

/// Evidence stream and balance counters for hinted handoff; embedded in
/// the Cassandra store behind the `audit` feature.
#[derive(Clone, Debug, Default)]
pub struct HintAuditor {
    /// Every hint transition, in virtual-time order.
    events: Vec<HintEvent>,
    /// Hints queued per node over the run.
    queued: Vec<u64>,
    /// Hints replayed per node over the run.
    replayed: Vec<u64>,
}

impl HintAuditor {
    fn node_slot(counts: &mut Vec<u64>, node: usize) -> &mut u64 {
        if node >= counts.len() {
            counts.resize(node + 1, 0);
        }
        &mut counts[node]
    }

    /// Records one hint queued for a down `node`.
    pub fn on_queued(&mut self, at: SimTime, node: usize) {
        *Self::node_slot(&mut self.queued, node) += 1;
        self.events.push(HintEvent {
            at,
            node,
            kind: HintEventKind::Queued,
        });
    }

    /// Records a rejoining `node` replaying `count` hints.
    pub fn on_replayed(&mut self, at: SimTime, node: usize, count: u64) {
        *Self::node_slot(&mut self.replayed, node) += count;
        self.events.push(HintEvent {
            at,
            node,
            kind: HintEventKind::Replayed { count },
        });
    }

    /// Asserts the hinted-handoff drain invariant for `node` after a
    /// restore: the live queue must be empty and every hint ever queued
    /// must have been replayed exactly once.
    pub fn assert_drained(&self, node: usize, remaining: usize) {
        assert_eq!(
            remaining, 0,
            "store audit: node {node} rejoined with {remaining} hints still queued"
        );
        let queued = self.queued.get(node).copied().unwrap_or(0);
        let replayed = self.replayed.get(node).copied().unwrap_or(0);
        assert_eq!(
            queued, replayed,
            "store audit: node {node} queued {queued} hints but replayed {replayed}"
        );
    }

    /// The recorded evidence stream, in virtual-time order.
    pub fn events(&self) -> &[HintEvent] {
        &self.events
    }

    /// Total hints queued for `node` over the run.
    pub fn queued(&self, node: usize) -> u64 {
        self.queued.get(node).copied().unwrap_or(0)
    }

    /// Total hints replayed by `node` over the run.
    pub fn replayed(&self, node: usize) -> u64 {
        self.replayed.get(node).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_queue_and_replay_pass() {
        let mut a = HintAuditor::default();
        a.on_queued(SimTime(10), 1);
        a.on_queued(SimTime(20), 1);
        a.on_replayed(SimTime(30), 1, 2);
        a.assert_drained(1, 0);
        assert_eq!(a.queued(1), 2);
        assert_eq!(a.replayed(1), 2);
        assert_eq!(a.events().len(), 3);
    }

    #[test]
    #[should_panic(expected = "still queued")]
    fn live_queue_after_restore_panics() {
        HintAuditor::default().assert_drained(0, 3);
    }

    #[test]
    #[should_panic(expected = "queued 2 hints but replayed 1")]
    fn lost_hint_panics() {
        let mut a = HintAuditor::default();
        a.on_queued(SimTime(10), 0);
        a.on_queued(SimTime(11), 0);
        a.on_replayed(SimTime(20), 0, 1);
        a.assert_drained(0, 0);
    }

    #[test]
    fn nodes_are_tracked_independently() {
        let mut a = HintAuditor::default();
        a.on_queued(SimTime(5), 2);
        a.on_replayed(SimTime(9), 2, 1);
        a.assert_drained(2, 0);
        a.assert_drained(7, 0); // never-touched node is trivially drained
        assert_eq!(a.queued(0), 0);
    }
}
