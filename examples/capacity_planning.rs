//! Capacity planning for an APM deployment: how many storage nodes does
//! each architecture need to absorb a monitored system's insert stream?
//!
//! Applies the paper's §8 arithmetic with *measured* per-node workload-W
//! throughput instead of a guess, and adds the disk-footprint dimension
//! of §5.7 (retention costs differ 3× between stores).
//!
//! ```text
//! cargo run --release --example capacity_planning [monitored_hosts]
//! ```

use apm_repro::core::metric::MonitoredSystem;
use apm_repro::core::workload::Workload;
use apm_repro::harness::experiment::{run_point, ExperimentProfile, StoreKind};
use apm_repro::sim::ClusterSpec;
use apm_repro::storage::encoding::{
    cassandra_format, hbase_format, mysql_format, voldemort_format,
};

fn main() {
    let hosts: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(240);
    let system = MonitoredSystem {
        hosts,
        metrics_per_host: 10_000,
        interval_secs: 10,
    };
    let demand = system.inserts_per_second() as f64;
    let retention_days = 30u64;
    println!(
        "demand: {hosts} hosts → {demand:.0} inserts/s, {:.1} TB raw per {retention_days} days\n",
        system.raw_bytes_per_day() as f64 * retention_days as f64 / 1e12
    );

    let profile = ExperimentProfile {
        scale: 0.005,
        data_factor: 1.0,
        warmup_secs: 1.0,
        measure_secs: 6.0,
        seed: 3,
    };
    // Per-node throughput measured at a mid-size cluster (4 nodes) so
    // coordination costs are included.
    let base_nodes = 4;

    println!(
        "{:<10} {:>14} {:>12} {:>16} {:>14}",
        "store", "W ops/s/node", "nodes(ops)", "disk TB (30d)", "nodes(disk)"
    );
    for store in [
        StoreKind::Cassandra,
        StoreKind::HBase,
        StoreKind::Voldemort,
        StoreKind::Mysql,
    ] {
        let point = run_point(
            store,
            ClusterSpec::cluster_m(),
            base_nodes,
            &Workload::w(),
            &profile,
        );
        let per_node = point.throughput() / base_nodes as f64;
        let nodes_for_ops = (demand / per_node).ceil();
        let format = match store {
            StoreKind::Cassandra => cassandra_format(),
            StoreKind::HBase => hbase_format(),
            StoreKind::Voldemort => voldemort_format(),
            StoreKind::Mysql => mysql_format(),
            _ => unreachable!(),
        };
        let total_records = system.inserts_per_second() * 86_400 * retention_days;
        let disk_tb = format.disk_usage(total_records) as f64 / 1e12;
        // 148 GB usable per Cluster-M node (2×74 GB RAID0, §3).
        let nodes_for_disk = (disk_tb * 1e12 / (148.0 * 1e9)).ceil();
        println!(
            "{:<10} {:>14.0} {:>12.0} {:>16.2} {:>14.0}",
            store.name(),
            per_node,
            nodes_for_ops,
            disk_tb,
            nodes_for_disk
        );
    }
    println!(
        "\nThe binding constraint for APM retention is usually disk, not insert \
         rate — compare the two node columns (the paper's §5.7 disk-efficiency \
         ordering decides the fleet size)."
    );
}
