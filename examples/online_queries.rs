//! The paper's §2 monitoring queries, end to end, on the real engines.
//!
//! > "What was the maximum number of connections on host X within the
//! > last 10 minutes?"
//! > "What was the average CPU utilization of Web servers of type Y
//! > within the last 15 minutes?"
//!
//! Agents report every 10 s; measurements are stored under a series-major
//! key layout so that each query is one small range scan per series (§3:
//! a 10-minute window = 60 records). The same query runs against the LSM
//! tree (the Cassandra/HBase engine), the B+tree (MySQL/Voldemort) and
//! the hash store with ordered index (Redis), demonstrating that the
//! public engine API serves the actual APM use case, not just YCSB ops.
//!
//! ```text
//! cargo run --release --example online_queries
//! ```

use apm_repro::core::metric::AgentReporter;
use apm_repro::core::record::{FieldValues, MetricKey};
use apm_repro::core::timeseries::{execute, ApmQuery, SeriesCodec, WindowAggregate};
use apm_repro::storage::btree::{BTree, BTreeConfig};
use apm_repro::storage::hashstore::HashStore;
use apm_repro::storage::lsm::{JobKind, LsmConfig, LsmTree};

const EPOCH: u64 = 1_332_988_800;
const HOSTS: u32 = 8;
const METRICS_PER_HOST: u32 = 16;
const INTERVALS: u64 = 120; // 20 minutes of reports at 10 s

fn series_id(host: u32, metric: u32) -> u64 {
    u64::from(host) * u64::from(METRICS_PER_HOST) + u64::from(metric)
}

fn main() {
    let codec = SeriesCodec::new(10, EPOCH);

    // ---- Generate 20 minutes of agent traffic (Figure-2 measurements).
    let mut lsm = LsmTree::new(LsmConfig::default());
    let mut btree = BTree::new(BTreeConfig::default());
    let mut hash = HashStore::new(None);
    let mut total = 0u64;
    for host in 0..HOSTS {
        let mut agent = AgentReporter::new(host, METRICS_PER_HOST, 10, EPOCH);
        for _ in 0..INTERVALS {
            for (metric, measurement) in agent.next_batch().into_iter().enumerate() {
                let record = codec.record(series_id(host, metric as u32), &measurement);
                let (_, job) = lsm.insert(record.key, record.fields);
                // Settle background work inline (no simulator here).
                let mut next = job;
                while let Some(j) = next {
                    next = match j.kind {
                        JobKind::Flush => lsm.complete_flush(j.id),
                        JobKind::Compaction => lsm.complete_compaction(j.id),
                    };
                }
                btree.insert(record.key, record.fields);
                hash.insert(record.key, record.fields)
                    .expect("no memory budget");
                total += 1;
            }
        }
    }
    let now = EPOCH + INTERVALS * 10 - 1;
    println!(
        "ingested {total} measurements from {HOSTS} hosts ({METRICS_PER_HOST} metrics each)\n"
    );

    // ---- Query 1 (§2): max connections on host 3, last 10 minutes.
    // Metric index 8 is "OpenConnections" in the agent's catalogue.
    let q1 = ApmQuery::WindowMax {
        series: series_id(3, 8),
        window_secs: 600,
    };
    // ---- Query 2 (§2): average CPU across all web servers, last 15 min.
    // Metric index 5 is "CpuUtilization".
    let cpu_series: Vec<u64> = (0..HOSTS).map(|h| series_id(h, 5)).collect();
    let q2 = ApmQuery::WindowAvgAcross {
        series: cpu_series,
        window_secs: 900,
    };

    type ScanFn = Box<dyn FnMut(MetricKey, usize) -> Vec<(MetricKey, FieldValues)>>;
    let engines: Vec<(&str, ScanFn)> = vec![
        (
            "lsm (cassandra/hbase engine)",
            Box::new(move |start, len| lsm.scan(&start, len).0),
        ),
        (
            "btree (mysql/voldemort engine)",
            Box::new(move |start, len| btree.scan(&start, len).0),
        ),
        (
            "hashstore (redis engine)",
            Box::new(move |start, len| hash.scan(&start, len).0),
        ),
    ];

    let mut reference: Option<(WindowAggregate, WindowAggregate)> = None;
    for (name, mut scan) in engines {
        let a1 = execute(&codec, &q1, now, &mut scan);
        let a2 = execute(&codec, &q2, now, &mut scan);
        println!("[{name}]");
        println!(
            "  max connections on host 3, last 10 min : {} (from {} samples)",
            a1.max, a1.count
        );
        println!(
            "  avg CPU across {HOSTS} hosts, last 15 min    : {:.2} (from {} samples)",
            a2.avg().unwrap_or(f64::NAN),
            a2.count
        );
        match &reference {
            None => reference = Some((a1, a2)),
            Some((r1, r2)) => {
                assert_eq!(&a1, r1, "engines disagree on query 1");
                assert_eq!(&a2, r2, "engines disagree on query 2");
                println!("  (matches the other engines' answers)");
            }
        }
    }
}
