//! Quickstart: benchmark one store on a simulated cluster.
//!
//! Builds a Cassandra-like store on two Cluster-M nodes, loads data,
//! runs the paper's write-heavy APM workload (W: 99 % inserts) for a few
//! simulated seconds, and prints throughput and latencies.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use apm_repro::core::driver::ClientConfig;
use apm_repro::core::ops::OpKind;
use apm_repro::core::workload::Workload;
use apm_repro::sim::{ClusterSpec, Engine, FaultSchedule};
use apm_repro::stores::api::StoreCtx;
use apm_repro::stores::cassandra::{CassandraConfig, CassandraStore};
use apm_repro::stores::runner::{run_benchmark, RunConfig};

fn main() {
    let nodes = 2;
    let scale = 0.01; // 1/100 of the paper's 10M records per node

    // 1. A simulation engine and the Cluster M hardware (2×quad Xeon,
    //    16 GB RAM, RAID0 — §3 of the paper).
    let mut engine = Engine::new();
    let ctx = StoreCtx::new(
        &mut engine,
        ClusterSpec::cluster_m(),
        nodes,
        StoreCtx::standard_client_machines(nodes),
        scale,
        42,
    );

    // 2. The store under test.
    let mut store = CassandraStore::new(ctx, CassandraConfig::default());

    // 3. The benchmark: workload W (1 % reads / 99 % inserts — the APM
    //    ingest pattern), 128 connections per server node.
    let config = RunConfig {
        workload: Workload::w(),
        client: ClientConfig::cluster_m(nodes).with_window(1.0, 10.0),
        records_per_node: (10_000_000.0 * scale) as u64,
        nodes,
        seed: 42,
        event_at_secs: None,
        faults: FaultSchedule::none(),
        op_deadline: None,
        telemetry_window_secs: None,
        resilience: None,
        checkpoints: None,
    };
    let result = run_benchmark(&mut engine, &mut store, &config);

    println!("workload W on {nodes} Cluster-M nodes (scale {scale}):");
    println!("  throughput : {:>10.0} ops/s", result.throughput());
    for kind in [OpKind::Read, OpKind::Insert] {
        if let Some(ms) = result.mean_latency_ms(kind) {
            println!(
                "  {:<6} mean : {ms:>10.3} ms ({} ops)",
                kind.label(),
                result.stats.ops(kind)
            );
        }
    }
    if let Some(bytes) = result.disk_bytes_per_node {
        println!("  disk usage : {:>10.2} MB/node", bytes as f64 / 1e6);
    }
}
