//! Compare all six stores on one workload — a miniature of the paper's
//! evaluation, with a table like its figures.
//!
//! ```text
//! cargo run --release --example store_shootout [R|RW|W|RS|RSW] [nodes]
//! ```

use apm_repro::core::ops::OpKind;
use apm_repro::core::report::Table;
use apm_repro::core::workload::Workload;
use apm_repro::harness::experiment::{run_point, ExperimentProfile, StoreKind};
use apm_repro::sim::ClusterSpec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workload = args
        .first()
        .and_then(|name| Workload::by_name(name))
        .unwrap_or_else(Workload::rw);
    let nodes: u32 = args.get(1).and_then(|n| n.parse().ok()).unwrap_or(4);

    let profile = ExperimentProfile {
        scale: 0.005,
        data_factor: 1.0,
        warmup_secs: 1.0,
        measure_secs: 6.0,
        seed: 99,
    };

    let stores: Vec<StoreKind> = StoreKind::ALL
        .into_iter()
        .filter(|k| !workload.mix.has_scans() || k.supports_scans())
        .collect();

    let mut table = Table::new(
        &format!("Workload {} on {} Cluster-M nodes", workload.name, nodes),
        "metric",
        "ops/s | ms",
    );
    table.columns = stores.iter().map(|s| s.name().to_string()).collect();

    let points: Vec<_> = stores
        .iter()
        .map(|&store| {
            eprintln!("running {} ...", store.name());
            run_point(store, ClusterSpec::cluster_m(), nodes, &workload, &profile)
        })
        .collect();

    table.push_row(
        "throughput",
        points.iter().map(|p| Some(p.throughput())).collect(),
    );
    for kind in [OpKind::Read, OpKind::Scan, OpKind::Insert] {
        let cells: Vec<Option<f64>> = points.iter().map(|p| p.latency_ms(kind)).collect();
        if cells.iter().any(Option::is_some) {
            table.push_row(&format!("{} latency", kind.label()), cells);
        }
    }
    println!("\n{}", table.render());
}
