//! The paper's motivating scenario, end to end.
//!
//! §1 sizes the problem: a data centre of monitored hosts, each agent
//! reporting ~10 K metrics every 10 s. §8 closes the loop: with 5 % of a
//! 240-node system dedicated to monitoring storage (12 nodes), the store
//! must absorb ~240 K inserts/s.
//!
//! This example generates *actual agent traffic* with the APM data model
//! (hierarchical metric names, min/max/duration aggregates — Figure 2),
//! packs it into benchmark records, ingests a slice of it into a
//! Cassandra-like store on 12 simulated nodes, and compares the measured
//! sustainable insert rate against the demand.
//!
//! ```text
//! cargo run --release --example apm_ingest
//! ```

use apm_repro::core::driver::ClientConfig;
use apm_repro::core::metric::{AgentReporter, MonitoredSystem};
use apm_repro::core::workload::Workload;
use apm_repro::sim::{ClusterSpec, Engine, FaultSchedule};
use apm_repro::stores::api::{DistributedStore, StoreCtx};
use apm_repro::stores::cassandra::{CassandraConfig, CassandraStore};
use apm_repro::stores::runner::{run_benchmark, RunConfig};

fn main() {
    // ---- The demand side: the paper's conclusion scenario.
    let system = MonitoredSystem::conclusion_scenario();
    println!(
        "monitored system: {} hosts × {} metrics @ {} s interval",
        system.hosts, system.metrics_per_host, system.interval_secs
    );
    println!(
        "  demand          : {:>10} inserts/s",
        system.inserts_per_second()
    );
    println!(
        "  raw volume      : {:>10.1} GB/day",
        system.raw_bytes_per_day() as f64 / 1e9
    );
    println!("  metric series   : {:>10}", system.series_count());

    // A taste of the real measurement stream (Figure 2 shape).
    let mut agent = AgentReporter::new(1, 3, system.interval_secs, 1_332_988_833);
    println!("\nsample agent report:");
    for m in agent.next_batch() {
        println!(
            "  {:<55} value={} min={} max={} ts={} dur={}",
            m.metric, m.value, m.min, m.max, m.timestamp, m.duration
        );
    }

    // ---- The supply side: what 12 storage nodes sustain on workload W.
    let nodes = 12;
    let scale = 0.005;
    let mut engine = Engine::new();
    let ctx = StoreCtx::new(
        &mut engine,
        ClusterSpec::cluster_m(),
        nodes,
        StoreCtx::standard_client_machines(nodes),
        scale,
        7,
    );
    let mut store = CassandraStore::new(ctx, CassandraConfig::default());

    // Ingest one real agent interval through the store's load path to
    // show the data model and store compose (measurement → record).
    let mut ingest_agent = AgentReporter::new(2, 100, system.interval_secs, 1_332_988_833);
    for (i, measurement) in ingest_agent.next_batch().into_iter().enumerate() {
        store.load(&measurement.to_record(1_000_000_000 + i as u64));
    }

    let config = RunConfig {
        workload: Workload::w(),
        client: ClientConfig::cluster_m(nodes).with_window(2.0, 10.0),
        records_per_node: (10_000_000.0 * scale) as u64,
        nodes,
        seed: 7,
        event_at_secs: None,
        faults: FaultSchedule::none(),
        op_deadline: None,
        telemetry_window_secs: None,
        resilience: None,
        checkpoints: None,
    };
    let result = run_benchmark(&mut engine, &mut store, &config);
    let supply = result.throughput();

    println!(
        "\nmeasured sustainable rate on {nodes} Cluster-M nodes (workload W): {supply:.0} ops/s"
    );
    let demand = system.inserts_per_second() as f64;
    if supply >= demand {
        println!(
            "verdict: meets the {demand:.0}/s demand with {:.0}% headroom",
            100.0 * (supply / demand - 1.0)
        );
    } else {
        println!(
            "verdict: falls short of the {demand:.0}/s demand by {:.0}% — the paper's §8 \
             conclusion (\"higher than the maximum throughput that Cassandra achieves ... but \
             not drastically; further improvements are needed\")",
            100.0 * (1.0 - supply / demand)
        );
    }
}
