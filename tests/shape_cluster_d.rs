//! Cluster D (disk-bound) shapes — §5.8, Figures 18–20.
//!
//! 150 M records total over 8 nodes exceed the 4 GB of per-node RAM, so
//! every store's read path hits disk: throughput rises steeply with the
//! write ratio for the LSM stores, far less for the B-tree store.

use apm_repro::core::ops::OpKind;
use apm_repro::core::workload::Workload;
use apm_repro::harness::experiment::{run_point, ExperimentProfile, Point, StoreKind};
use apm_repro::sim::ClusterSpec;

fn d_profile() -> ExperimentProfile {
    // Cluster D loads 150 M total = 18.75 M/node — 1.875× the Cluster-M
    // density, applied to the data only (not the memory budgets).
    ExperimentProfile {
        data_factor: 1.875,
        ..ExperimentProfile::test()
    }
}

fn point(store: StoreKind, workload: &Workload) -> Point {
    run_point(store, ClusterSpec::cluster_d(), 8, workload, &d_profile())
}

#[test]
fn write_ratio_gains_match_figure18() {
    // §5.8: R→W gains: Cassandra ×26, HBase ×15, Voldemort only ×3.
    let r = Workload::r();
    let w = Workload::w();
    let cass_gain =
        point(StoreKind::Cassandra, &w).throughput() / point(StoreKind::Cassandra, &r).throughput();
    let hbase_gain =
        point(StoreKind::HBase, &w).throughput() / point(StoreKind::HBase, &r).throughput();
    let vold_gain =
        point(StoreKind::Voldemort, &w).throughput() / point(StoreKind::Voldemort, &r).throughput();
    assert!(
        cass_gain > 8.0,
        "cassandra R→W gain {cass_gain:.1} (paper: 26)"
    );
    assert!(
        hbase_gain > 4.0,
        "hbase R→W gain {hbase_gain:.1} (paper: 15)"
    );
    assert!(
        (1.2..8.0).contains(&vold_gain),
        "voldemort R→W gain {vold_gain:.1} (paper: 3)"
    );
    assert!(
        vold_gain < cass_gain,
        "the B-tree store must gain least from writes"
    );
}

#[test]
fn cluster_d_read_latencies_are_disk_bound() {
    // Fig 19: read latencies in the tens of milliseconds; Voldemort "by
    // far the best" (5-6 ms); HBase the worst.
    let r = Workload::r();
    let cassandra = point(StoreKind::Cassandra, &r)
        .latency_ms(OpKind::Read)
        .unwrap();
    let voldemort = point(StoreKind::Voldemort, &r)
        .latency_ms(OpKind::Read)
        .unwrap();
    let hbase = point(StoreKind::HBase, &r)
        .latency_ms(OpKind::Read)
        .unwrap();
    assert!(
        cassandra > 10.0,
        "cassandra D reads must be disk-bound: {cassandra} ms (paper: 40)"
    );
    assert!(
        voldemort < cassandra,
        "voldemort {voldemort} must beat cassandra {cassandra}"
    );
    assert!(
        hbase > cassandra,
        "hbase {hbase} must be worst (paper: 70+ ms)"
    );
}

#[test]
fn hbase_write_latency_stays_low_even_disk_bound() {
    // Fig 20: "As in Cluster M, HBase has a very low latency, well below
    // 1 ms."
    let rw = Workload::rw();
    let hbase = point(StoreKind::HBase, &rw)
        .latency_ms(OpKind::Insert)
        .unwrap();
    assert!(hbase < 2.0, "hbase D write latency {hbase} ms");
    let cassandra = point(StoreKind::Cassandra, &rw)
        .latency_ms(OpKind::Insert)
        .unwrap();
    assert!(hbase < cassandra, "hbase {hbase} vs cassandra {cassandra}");
}

#[test]
fn cluster_d_throughput_is_far_below_cluster_m() {
    // §5.9: "In this disk-bound setup, all systems have much lower
    // throughputs and higher latencies."
    let r = Workload::r();
    let profile = ExperimentProfile::test();
    for store in [StoreKind::Cassandra, StoreKind::Voldemort] {
        let m = run_point(store, ClusterSpec::cluster_m(), 8, &r, &profile).throughput();
        let d = point(store, &r).throughput();
        assert!(
            d < m / 4.0,
            "{}: D {d} must be far below M {m}",
            store.name()
        );
    }
}
