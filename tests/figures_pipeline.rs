//! The figure-generation pipeline end to end: tables, reference data,
//! shape checks, persistence.

use apm_repro::harness::experiment::ExperimentProfile;
use apm_repro::harness::figures::{all_figures, disk_usage, generate, table1_table};
use apm_repro::harness::output::{render_experiments_md, FigureResult, ResultsFile};
use apm_repro::harness::reference::{for_figure, reference_points};
use apm_repro::harness::shape::checks_for;

#[test]
fn the_artifact_index_covers_every_evaluation_figure() {
    let ids: Vec<&str> = all_figures().iter().map(|f| f.id).collect();
    // Table 1 plus figures 3..=20 — figures 1/2 are illustrations.
    assert_eq!(ids.len(), 19);
    for n in 3..=20 {
        assert!(ids.contains(&format!("fig{n}").as_str()), "missing fig{n}");
    }
}

#[test]
fn table1_is_exact() {
    let t = table1_table();
    assert_eq!(t.rows, vec!["R", "RW", "W", "RS", "RSW"]);
    assert_eq!(t.get("R", "read"), Some(95.0));
    assert_eq!(t.get("RW", "insert"), Some(50.0));
    assert_eq!(t.get("W", "read"), Some(1.0));
    assert_eq!(t.get("RS", "scan"), Some(47.0));
    assert_eq!(t.get("RSW", "scan"), Some(25.0));
}

#[test]
fn figure17_reproduces_disk_usage_and_its_shape_checks_pass() {
    let profile = ExperimentProfile::test();
    let table = disk_usage("fig17", &profile);
    let checks = checks_for("fig17", &table);
    assert!(!checks.is_empty());
    for check in &checks {
        assert!(
            check.pass,
            "fig17 shape check failed: {} — {}",
            check.claim, check.detail
        );
    }
    // Fig 17 reference values: within 20 % of the paper's GB numbers.
    for r in for_figure("fig17") {
        let measured = table.get(r.row, r.store).expect("cell exists");
        let rel = (measured - r.value).abs() / r.value;
        assert!(
            rel < 0.2,
            "fig17 {}@{}: paper {} vs measured {measured}",
            r.store,
            r.row,
            r.value
        );
    }
}

#[test]
fn generate_table1_via_the_dispatcher() {
    let profile = ExperimentProfile::test();
    let t = generate("table1", &profile);
    assert!(t.title.contains("Table 1"));
}

#[test]
fn results_roundtrip_and_render() {
    let profile = ExperimentProfile::test();
    let table = disk_usage("fig17", &profile);
    let checks = checks_for("fig17", &table);
    let results = ResultsFile {
        profile: "test".into(),
        figures: vec![FigureResult::capture("fig17", &table, &checks)],
    };
    let parsed = ResultsFile::from_json(&results.to_json()).expect("json roundtrip");
    assert_eq!(parsed.figures[0].id, "fig17");
    let md = render_experiments_md(&parsed);
    assert!(md.contains("Figure 17"));
    assert!(md.contains("Shape checks passed"));
}

#[test]
fn every_reference_point_addresses_a_real_row_and_column() {
    // Guard against typos: fig17 rows are node counts; fig18-20 rows are
    // workload names; node-sweep rows are in NODE_COUNTS.
    let node_rows = ["1", "2", "4", "8", "12"];
    let d_rows = ["R", "RW", "W"];
    let load_rows = ["50", "60", "70", "80", "90", "95"];
    for p in reference_points() {
        let ok = match p.figure {
            "fig15" | "fig16" => load_rows.contains(&p.row),
            "fig18" | "fig19" | "fig20" => d_rows.contains(&p.row),
            _ => node_rows.contains(&p.row),
        };
        assert!(ok, "reference point with bad row: {p:?}");
        assert!(
            [
                "cassandra",
                "hbase",
                "voldemort",
                "voltdb",
                "redis",
                "mysql",
                "raw"
            ]
            .contains(&p.store),
            "unknown store {p:?}"
        );
    }
}
