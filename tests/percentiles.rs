//! Latency distribution sanity across the full stack: percentiles are
//! ordered, saturation produces heavy tails, throttling removes them.

use apm_repro::core::driver::Throttle;
use apm_repro::core::ops::OpKind;
use apm_repro::core::workload::Workload;
use apm_repro::harness::experiment::{
    run_point, run_point_throttled, ExperimentProfile, StoreKind,
};
use apm_repro::sim::ClusterSpec;

#[test]
fn percentiles_are_monotone_for_every_store() {
    let profile = ExperimentProfile::test();
    for store in StoreKind::ALL {
        let point = run_point(
            store,
            ClusterSpec::cluster_m(),
            1,
            &Workload::rw(),
            &profile,
        );
        let h = point
            .result
            .stats
            .histogram(OpKind::Read)
            .expect("reads measured");
        let p50 = h.quantile(0.5);
        let p90 = h.quantile(0.9);
        let p99 = h.quantile(0.99);
        assert!(
            p50 <= p90 && p90 <= p99,
            "{}: {p50} {p90} {p99}",
            store.name()
        );
        assert!(
            h.min() <= p50 && p99 <= h.max(),
            "{}: bounds violated",
            store.name()
        );
    }
}

#[test]
fn saturated_tail_exceeds_median_and_throttling_compresses_it() {
    let profile = ExperimentProfile::test();
    let store = StoreKind::Cassandra;
    let max = run_point(store, ClusterSpec::cluster_m(), 2, &Workload::r(), &profile);
    let h_max = max.result.stats.histogram(OpKind::Read).unwrap();
    let saturated_spread = h_max.quantile(0.99) as f64 / h_max.quantile(0.5).max(1) as f64;

    let half = run_point_throttled(
        store,
        ClusterSpec::cluster_m(),
        2,
        &Workload::r(),
        &profile,
        Throttle::TargetOps(max.throughput() * 0.5),
    );
    let h_half = half.result.stats.histogram(OpKind::Read).unwrap();
    // §5.6: latencies collapse once the system is not saturated.
    assert!(
        (h_half.mean() as f64) < h_max.mean() * 0.7,
        "throttled mean {} vs saturated {}",
        h_half.mean(),
        h_max.mean()
    );
    assert!(saturated_spread >= 1.0, "saturated p99 must be ≥ p50");
}

#[test]
fn voldemort_latency_is_tight_not_just_low() {
    // Fig 4's "stable" claim: the p99/p50 spread of the client-limited
    // store stays small because its servers never saturate.
    let profile = ExperimentProfile::test();
    let point = run_point(
        StoreKind::Voldemort,
        ClusterSpec::cluster_m(),
        4,
        &Workload::r(),
        &profile,
    );
    let h = point.result.stats.histogram(OpKind::Read).unwrap();
    let spread = h.quantile(0.99) as f64 / h.quantile(0.5).max(1) as f64;
    assert!(spread < 4.0, "voldemort spread too wide: {spread:.2}");
}
