//! Acceptance check for the `audit` feature: the fault experiments
//! reproduce byte-identically with every kernel invariant check
//! enabled. Compile-gated — run with `cargo test --features audit`.
//!
//! Every `Engine` in these runs carries the `KernelAuditor`, so a
//! monotonicity, tie-break, conservation, or fault-causality violation
//! anywhere in the crash/slow-disk/partition workloads panics the test;
//! the assertions below additionally pin the *results* bit-for-bit
//! across two executions.
#![cfg(feature = "audit")]

use apm_repro::harness::experiment::ExperimentProfile;
use apm_repro::harness::faults::{crash_failover, partition, slow_disk};

#[test]
fn fault_experiments_reproduce_byte_identically_under_audit() {
    let profile = ExperimentProfile::test();
    for (name, gen) in [
        (
            "ext-faults-crash",
            crash_failover as fn(&ExperimentProfile) -> _,
        ),
        ("ext-faults-slowdisk", slow_disk),
        ("ext-faults-partition", partition),
    ] {
        let a = gen(&profile);
        let b = gen(&profile);
        assert_eq!(a.rows, b.rows, "{name}: row set diverged");
        assert_eq!(a.columns, b.columns, "{name}: column set diverged");
        // Option<f64> equality is bitwise for the finite values the
        // tables hold — byte-identical or bust.
        assert_eq!(a.cells, b.cells, "{name}: cells diverged under audit");
    }
}
