//! Trace-feature integration (`--features trace`): the Chrome
//! trace-event export is well-formed — spans balance per thread,
//! timestamps are monotone per thread — and two identically seeded
//! captures are byte-identical with equal kernel fingerprints.
#![cfg(feature = "trace")]

use apm_repro::harness::json::{self, Json};
use apm_repro::harness::obs::capture_trace_demo;
use std::collections::BTreeMap;

fn demo_events() -> Vec<Json> {
    let (text, _) = capture_trace_demo();
    let doc = json::parse(&text).expect("exported trace must parse");
    doc.get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array")
        .to_vec()
}

fn field(e: &Json, key: &str) -> String {
    match e.get(key) {
        Some(Json::Str(s)) => s.clone(),
        Some(Json::Num(n)) => format!("{n}"),
        other => panic!("event field {key} missing or mistyped: {other:?}"),
    }
}

fn num(e: &Json, key: &str) -> f64 {
    e.get(key).and_then(Json::as_f64).expect("numeric field")
}

#[test]
fn spans_nest_and_balance_within_every_thread() {
    let events = demo_events();
    assert!(!events.is_empty(), "demo trace must contain events");
    let mut stacks: BTreeMap<(String, String), Vec<String>> = BTreeMap::new();
    for e in &events {
        let key = (field(e, "pid"), field(e, "tid"));
        match field(e, "ph").as_str() {
            "B" => stacks.entry(key).or_default().push(field(e, "name")),
            "E" => {
                let open = stacks.get_mut(&key).expect("E without any B");
                let name = open.pop().expect("E with empty span stack");
                assert_eq!(name, field(e, "name"), "mis-nested span close");
            }
            "i" => {}
            other => panic!("unexpected phase {other}"),
        }
    }
    for (key, open) in stacks {
        assert!(open.is_empty(), "thread {key:?} left spans open: {open:?}");
    }
}

#[test]
fn timestamps_are_monotone_within_every_thread() {
    let events = demo_events();
    let mut last: BTreeMap<(String, String), f64> = BTreeMap::new();
    for e in &events {
        let key = (field(e, "pid"), field(e, "tid"));
        let ts = num(e, "ts");
        if let Some(prev) = last.get(&key) {
            assert!(ts >= *prev, "thread {key:?} went backwards: {prev} -> {ts}");
        }
        last.insert(key, ts);
    }
    assert!(!last.is_empty());
}

#[test]
fn trace_contains_the_injected_fault_instants() {
    let events = demo_events();
    let instants: Vec<String> = events
        .iter()
        .filter(|e| field(e, "ph") == "i")
        .map(|e| field(e, "name"))
        .collect();
    assert!(
        instants.iter().any(|n| n == "fault:down"),
        "crash missing from {instants:?}"
    );
    assert!(
        instants.iter().any(|n| n == "fault:restored"),
        "restore missing from {instants:?}"
    );
}

#[test]
fn identical_captures_share_fingerprint_and_bytes() {
    let (text_a, fp_a) = capture_trace_demo();
    let (text_b, fp_b) = capture_trace_demo();
    assert_eq!(fp_a, fp_b, "kernel trace fingerprint diverged");
    assert_eq!(text_a, text_b, "exported JSON diverged");
    assert_ne!(fp_a, 0, "a non-empty run must fold a non-trivial hash");
}
