//! Full-stack determinism: identical seeds reproduce identical runs.
//!
//! §3 averaged three executions because real clusters are noisy; the
//! simulator's value is that a run is exactly repeatable — every recorded
//! number in EXPERIMENTS.md can be regenerated bit-for-bit.

use apm_repro::core::ops::OpKind;
use apm_repro::core::workload::Workload;
use apm_repro::harness::experiment::{run_point, ExperimentProfile, StoreKind};
use apm_repro::harness::faults::crash_failover;
use apm_repro::sim::ClusterSpec;

fn fingerprint(store: StoreKind, seed: u64) -> (u64, u64, u64, Option<u64>) {
    let profile = ExperimentProfile {
        seed,
        ..ExperimentProfile::test()
    };
    let point = run_point(
        store,
        ClusterSpec::cluster_m(),
        2,
        &Workload::rw(),
        &profile,
    );
    (
        point.result.stats.total_ops(),
        point.result.issued,
        point.result.stats.ops(OpKind::Insert),
        point.result.disk_bytes_per_node,
    )
}

#[test]
fn identical_seeds_reproduce_identical_runs() {
    for store in StoreKind::ALL {
        let a = fingerprint(store, 1234);
        let b = fingerprint(store, 1234);
        assert_eq!(a, b, "{} diverged across identical runs", store.name());
    }
}

#[test]
fn different_seeds_change_the_operation_stream() {
    let a = fingerprint(StoreKind::Cassandra, 1);
    let b = fingerprint(StoreKind::Cassandra, 2);
    // Total completed ops differ almost surely when the op stream differs;
    // if throughput coincided, the issued count still reflects ordering.
    assert_ne!((a.0, a.1), (b.0, b.1), "seed must influence the run");
}

/// Regression test for the D2 (`hash-order`) audit fixes: the store
/// background-job maps used to be `HashMap`s, so a run with crash
/// faults — which iterates those maps during failover and hint replay —
/// could diverge between executions. With `BTreeMap` the whole fault
/// table (availability, error counts, phase throughputs, recovery
/// times) must be bit-identical across two runs.
#[test]
fn fault_experiments_are_deterministic_across_runs() {
    let profile = ExperimentProfile::test();
    let a = crash_failover(&profile);
    let b = crash_failover(&profile);
    assert_eq!(a.rows, b.rows, "row set diverged");
    assert_eq!(a.columns, b.columns, "column set diverged");
    assert_eq!(
        a.cells, b.cells,
        "cell values diverged across identical runs"
    );
}

/// The observability additions must be as replayable as the runs they
/// observe: two executions of the virtual-time profiler and of the
/// windowed telemetry timeline must agree to the bit (utilisations are
/// compared via `to_bits`, not approximately).
#[test]
fn observability_tables_are_deterministic_across_runs() {
    let profile = ExperimentProfile::test();
    let bits = |t: &apm_repro::core::report::Table| -> Vec<Vec<Option<u64>>> {
        t.cells
            .iter()
            .map(|row| row.iter().map(|c| c.map(f64::to_bits)).collect())
            .collect()
    };
    let a = apm_repro::harness::obs::time_attribution(&profile);
    let b = apm_repro::harness::obs::time_attribution(&profile);
    assert_eq!(a.rows, b.rows);
    assert_eq!(bits(&a), bits(&b), "profiler attribution diverged");
    let c = apm_repro::harness::obs::telemetry_timeline(&profile);
    let d = apm_repro::harness::obs::telemetry_timeline(&profile);
    assert_eq!(c.rows, d.rows);
    assert_eq!(bits(&c), bits(&d), "telemetry timeline diverged");
}

#[test]
fn latency_statistics_are_reproducible_to_the_nanosecond() {
    let profile = ExperimentProfile::test();
    let run = || {
        let p = run_point(
            StoreKind::Voldemort,
            ClusterSpec::cluster_m(),
            2,
            &Workload::r(),
            &profile,
        );
        (
            p.result
                .stats
                .histogram(OpKind::Read)
                .map(|h| (h.count(), h.min(), h.max())),
            p.result
                .stats
                .histogram(OpKind::Insert)
                .map(|h| (h.count(), h.min(), h.max())),
        )
    };
    assert_eq!(run(), run());
}
