//! Scan-workload shapes (§5.4–§5.5, Figures 12–14).

use apm_repro::core::ops::OpKind;
use apm_repro::core::workload::Workload;
use apm_repro::harness::experiment::{run_point, ExperimentProfile, Point, StoreKind};
use apm_repro::sim::ClusterSpec;

fn point(store: StoreKind, nodes: u32, workload: &Workload) -> Point {
    run_point(
        store,
        ClusterSpec::cluster_m(),
        nodes,
        workload,
        &ExperimentProfile::test(),
    )
}

#[test]
fn mysql_rs_does_not_scale_while_cassandra_does() {
    // Fig 12: "MySQL has the best throughput for a single node, but does
    // not scale"; Cassandra/HBase scale linearly.
    let w = Workload::rs();
    let mysql_1 = point(StoreKind::Mysql, 1, &w).throughput();
    let mysql_4 = point(StoreKind::Mysql, 4, &w).throughput();
    let cassandra_1 = point(StoreKind::Cassandra, 1, &w).throughput();
    let cassandra_4 = point(StoreKind::Cassandra, 4, &w).throughput();
    assert!(
        mysql_1 > cassandra_1,
        "mysql must win at one node: {mysql_1} vs {cassandra_1}"
    );
    assert!(
        mysql_4 / mysql_1 < 2.0,
        "mysql RS must not scale: {mysql_1} → {mysql_4}"
    );
    assert!(
        cassandra_4 / cassandra_1 > 2.8,
        "cassandra RS must scale: {cassandra_1} → {cassandra_4}"
    );
}

#[test]
fn scan_latency_ordering_matches_figure13() {
    // Fig 13 at 4 nodes: redis < cassandra < hbase; mysql grows with n.
    let w = Workload::rs();
    let redis = point(StoreKind::Redis, 4, &w)
        .latency_ms(OpKind::Scan)
        .unwrap();
    let cassandra = point(StoreKind::Cassandra, 4, &w)
        .latency_ms(OpKind::Scan)
        .unwrap();
    let hbase = point(StoreKind::HBase, 4, &w)
        .latency_ms(OpKind::Scan)
        .unwrap();
    assert!(
        redis < cassandra,
        "redis scan {redis} vs cassandra {cassandra}"
    );
    assert!(
        cassandra < hbase,
        "cassandra scan {cassandra} vs hbase {hbase}"
    );
    assert!(
        (5.0..60.0).contains(&cassandra),
        "cassandra scans {cassandra} ms (paper: 20-25)"
    );
    let mysql_2 = point(StoreKind::Mysql, 2, &w)
        .latency_ms(OpKind::Scan)
        .unwrap();
    let mysql_8 = point(StoreKind::Mysql, 8, &w)
        .latency_ms(OpKind::Scan)
        .unwrap();
    assert!(
        mysql_8 > mysql_2 * 2.0,
        "mysql scan latency must climb: {mysql_2} → {mysql_8}"
    );
}

#[test]
fn voldemort_rejects_scan_workloads() {
    // §5.4: the Voldemort client does not support scans; the harness
    // therefore excludes it, and direct use reports rejections.
    let p = point(StoreKind::Voldemort, 1, &Workload::rs());
    assert!(
        p.result.stats.total_rejected() > 0,
        "scans must be rejected"
    );
    assert!(!StoreKind::Voldemort.supports_scans());
}

#[test]
fn mysql_rsw_collapses_under_insert_churn() {
    // §5.5/Fig 14: MySQL RSW is orders of magnitude below its RS level,
    // while VoltDB has the best single-node RSW throughput.
    // Longer window: the collapse is a convoy that converges over a few
    // simulated seconds (the paper's 600 s steady state is far past it).
    let profile = ExperimentProfile {
        measure_secs: 12.0,
        ..ExperimentProfile::test()
    };
    let rs = apm_repro::harness::experiment::run_point(
        StoreKind::Mysql,
        ClusterSpec::cluster_m(),
        2,
        &Workload::rs(),
        &profile,
    )
    .throughput();
    let rsw = apm_repro::harness::experiment::run_point(
        StoreKind::Mysql,
        ClusterSpec::cluster_m(),
        2,
        &Workload::rsw(),
        &profile,
    )
    .throughput();
    assert!(
        rsw < rs / 10.0,
        "mysql RSW must collapse: rs={rs} rsw={rsw}"
    );

    let voltdb = point(StoreKind::VoltDb, 1, &Workload::rsw()).throughput();
    let cassandra = point(StoreKind::Cassandra, 1, &Workload::rsw()).throughput();
    assert!(
        voltdb > cassandra,
        "voltdb best 1-node RSW: {voltdb} vs {cassandra}"
    );
}

#[test]
fn hbase_and_cassandra_gain_from_lower_scan_rate_in_rsw() {
    // §5.5: "HBase and Cassandra gain from the lower scan rate and have,
    // therefore, a throughput that is twice as high as for Workload RS".
    for store in [StoreKind::Cassandra, StoreKind::HBase] {
        let rs = point(store, 2, &Workload::rs()).throughput();
        let rsw = point(store, 2, &Workload::rsw()).throughput();
        assert!(
            rsw > rs * 1.3,
            "{}: RSW {rsw} must beat RS {rs}",
            store.name()
        );
    }
}
