//! End-to-end APM monitoring pipeline: agents → records → storage engine
//! → the §2 window queries.

use apm_repro::core::metric::{AgentReporter, MonitoredSystem};
use apm_repro::core::timeseries::{execute, ApmQuery, SeriesCodec};
use apm_repro::storage::lsm::{JobKind, LsmConfig, LsmTree};

const EPOCH: u64 = 1_332_988_800;

fn ingest(hosts: u32, metrics: u32, intervals: u64) -> (LsmTree, SeriesCodec) {
    let codec = SeriesCodec::new(10, EPOCH);
    let mut lsm = LsmTree::new(LsmConfig {
        memtable_flush_bytes: 75 * 2_000,
        ..LsmConfig::default()
    });
    for host in 0..hosts {
        let mut agent = AgentReporter::new(host, metrics, 10, EPOCH);
        for _ in 0..intervals {
            for (metric, m) in agent.next_batch().into_iter().enumerate() {
                let series = u64::from(host) * u64::from(metrics) + metric as u64;
                let record = codec.record(series, &m);
                let (_, job) = lsm.insert(record.key, record.fields);
                let mut next = job;
                while let Some(j) = next {
                    next = match j.kind {
                        JobKind::Flush => lsm.complete_flush(j.id),
                        JobKind::Compaction => lsm.complete_compaction(j.id),
                    };
                }
            }
        }
    }
    (lsm, codec)
}

#[test]
fn ten_minute_window_max_scans_exactly_sixty_records() {
    // §3: "for a ten minute scan window with 10 seconds resolution, the
    // number of scanned values is 60".
    let (mut lsm, codec) = ingest(2, 4, 80);
    let now = EPOCH + 80 * 10 - 1;
    let agg = execute(
        &codec,
        &ApmQuery::WindowMax {
            series: 5,
            window_secs: 600,
        },
        now,
        |start, len| {
            assert_eq!(len, 60, "window scan length");
            lsm.scan(&start, len).0
        },
    );
    assert_eq!(agg.count, 60);
    assert!(agg.max >= agg.min);
}

#[test]
fn window_results_match_a_recomputation_from_the_agent_stream() {
    let hosts = 3;
    let metrics = 5;
    let intervals = 70u64;
    let (mut lsm, codec) = ingest(hosts, metrics, intervals);
    // Recompute the expected answer directly from a replayed agent.
    let target_host = 1u32;
    let target_metric = 2u32;
    let series = u64::from(target_host) * u64::from(metrics) + u64::from(target_metric);
    let mut replay = AgentReporter::new(target_host, metrics, 10, EPOCH);
    let mut expected_max = i64::MIN;
    let window_slots = 60; // last 10 minutes of 70 intervals
    for interval in 0..intervals {
        let batch = replay.next_batch();
        if interval >= intervals - window_slots {
            expected_max = expected_max.max(batch[target_metric as usize].max);
        }
    }
    let now = EPOCH + intervals * 10 - 1;
    let agg = execute(
        &codec,
        &ApmQuery::WindowMax {
            series,
            window_secs: 600,
        },
        now,
        |start, len| lsm.scan(&start, len).0,
    );
    assert_eq!(
        agg.max, expected_max,
        "store answer must match the source stream"
    );
    assert_eq!(agg.count, window_slots);
}

#[test]
fn cross_host_average_covers_every_host_once() {
    let hosts = 4;
    let metrics = 3;
    let (mut lsm, codec) = ingest(hosts, metrics, 100);
    let cpu_metric = 0u64;
    let series: Vec<u64> = (0..hosts)
        .map(|h| u64::from(h) * u64::from(metrics) + cpu_metric)
        .collect();
    let now = EPOCH + 100 * 10 - 1;
    let agg = execute(
        &codec,
        &ApmQuery::WindowAvgAcross {
            series,
            window_secs: 900,
        },
        now,
        |start, len| lsm.scan(&start, len).0,
    );
    assert_eq!(
        agg.count,
        u64::from(hosts) * 90,
        "15 min × 4 hosts at 10 s = 360 samples"
    );
    let avg = agg.avg().expect("non-empty window");
    assert!(agg.min as f64 <= avg && avg <= agg.max as f64);
}

#[test]
fn capacity_arithmetic_matches_the_paper() {
    // The §1 scenario feeding the pipeline sizes the ingest stream that
    // the benchmark's workload W models.
    let s = MonitoredSystem::paper_scenario();
    assert_eq!(s.inserts_per_second(), 10_000_000);
    let c = MonitoredSystem::conclusion_scenario();
    assert_eq!(c.inserts_per_second(), 240_000);
    // 240K/s of 75-byte records ≈ 1.56 TB/day raw.
    assert!((c.raw_bytes_per_day() as f64 / 1e12 - 1.555).abs() < 0.01);
}
