//! # apm-repro
//!
//! Umbrella crate for the reproduction of Rabl et al., *"Solving Big Data
//! Challenges for Enterprise Application Performance Management"* (VLDB
//! 2012). It re-exports the workspace crates so examples and integration
//! tests can use a single dependency:
//!
//! - [`core`] (`apm-core`) — APM data model, Table-1 workloads, statistics,
//!   closed-loop client driver model.
//! - [`sim`] (`apm-sim`) — deterministic discrete-event cluster simulator
//!   (CPU / disk / network / handler-pool resources, Cluster M and D specs).
//! - [`storage`] (`apm-storage`) — real storage-engine substrates: LSM tree,
//!   B+tree with buffer pool, commit log, in-memory hash store, partitioned
//!   serial executor.
//! - [`stores`] (`apm-stores`) — the six benchmarked store architectures
//!   (Cassandra-, HBase-, Voldemort-, Redis-, VoltDB-, and sharded
//!   MySQL-like) plus client-side routing layers.
//! - [`harness`] (`apm-harness`) — per-figure experiments and the `repro`
//!   command-line runner.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the full system
//! inventory and substitution rationale.

pub use apm_core as core;
pub use apm_harness as harness;
pub use apm_sim as sim;
pub use apm_storage as storage;
pub use apm_stores as stores;
