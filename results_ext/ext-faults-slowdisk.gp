set datafile separator ','
set key outside
set title "Extension: one fail-slow disk from t=3s to t=6s (HBase, workload R, 4 nodes, Cluster D)"
set xlabel 'slowdown'
set ylabel 'ratio | count | ops/sec | s'
set term pngcairo size 900,540
set output 'ext-faults-slowdisk.png'
set style data linespoints
plot 'ext-faults-slowdisk.csv' using 2:xtic(1) with linespoints title 'availability', \
     'ext-faults-slowdisk.csv' using 3:xtic(1) with linespoints title 'errors', \
     'ext-faults-slowdisk.csv' using 4:xtic(1) with linespoints title 'throughput', \
     'ext-faults-slowdisk.csv' using 5:xtic(1) with linespoints title 'pre_ops_per_sec', \
     'ext-faults-slowdisk.csv' using 6:xtic(1) with linespoints title 'mid_ops_per_sec', \
     'ext-faults-slowdisk.csv' using 7:xtic(1) with linespoints title 'post_ops_per_sec', \
     'ext-faults-slowdisk.csv' using 8:xtic(1) with linespoints title 'recovery_ratio', \
     'ext-faults-slowdisk.csv' using 9:xtic(1) with linespoints title 'recovery_secs'
