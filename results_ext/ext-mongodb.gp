set datafile separator ','
set key outside
set title "Extension: document store vs. the paper's winners (4 nodes, Cluster M)"
set xlabel 'workload'
set ylabel 'ops/sec'
set term pngcairo size 900,540
set output 'ext-mongodb.png'
set style data linespoints
plot 'ext-mongodb.csv' using 2:xtic(1) with linespoints title 'cassandra', \
     'ext-mongodb.csv' using 3:xtic(1) with linespoints title 'hbase', \
     'ext-mongodb.csv' using 4:xtic(1) with linespoints title 'mongodb'
