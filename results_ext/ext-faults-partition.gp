set datafile separator ','
set key outside
set title "Extension: one shard partitioned from t=3s to t=6s (Redis, read-only, 4 nodes)"
set xlabel 'client'
set ylabel 'ratio | count | ops/sec | s'
set term pngcairo size 900,540
set output 'ext-faults-partition.png'
set style data linespoints
plot 'ext-faults-partition.csv' using 2:xtic(1) with linespoints title 'availability', \
     'ext-faults-partition.csv' using 3:xtic(1) with linespoints title 'errors', \
     'ext-faults-partition.csv' using 4:xtic(1) with linespoints title 'throughput', \
     'ext-faults-partition.csv' using 5:xtic(1) with linespoints title 'pre_ops_per_sec', \
     'ext-faults-partition.csv' using 6:xtic(1) with linespoints title 'mid_ops_per_sec', \
     'ext-faults-partition.csv' using 7:xtic(1) with linespoints title 'post_ops_per_sec', \
     'ext-faults-partition.csv' using 8:xtic(1) with linespoints title 'recovery_ratio', \
     'ext-faults-partition.csv' using 9:xtic(1) with linespoints title 'recovery_secs'
