set datafile separator ','
set key outside
set title "Extension: crash recovery compared, crash t=3s restart t=6s (workload R, 4 nodes)"
set xlabel 'store'
set ylabel 'ratio | count | ops/sec | s'
set term pngcairo size 900,540
set output 'ext-faults-failover.png'
set style data linespoints
plot 'ext-faults-failover.csv' using 2:xtic(1) with linespoints title 'availability', \
     'ext-faults-failover.csv' using 3:xtic(1) with linespoints title 'errors', \
     'ext-faults-failover.csv' using 4:xtic(1) with linespoints title 'throughput', \
     'ext-faults-failover.csv' using 5:xtic(1) with linespoints title 'pre_ops_per_sec', \
     'ext-faults-failover.csv' using 6:xtic(1) with linespoints title 'mid_ops_per_sec', \
     'ext-faults-failover.csv' using 7:xtic(1) with linespoints title 'post_ops_per_sec', \
     'ext-faults-failover.csv' using 8:xtic(1) with linespoints title 'recovery_ratio', \
     'ext-faults-failover.csv' using 9:xtic(1) with linespoints title 'recovery_secs'
