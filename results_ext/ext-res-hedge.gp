set datafile separator ','
set key outside
set title "Extension: hedged reads vs a 16x fail-slow node, t=3s to t=6s (Cassandra rf=2, workload R, 4 nodes, 60% load)"
set xlabel 'policy'
set ylabel 'ratio | count | ops/sec | ms'
set logscale y
set term pngcairo size 900,540
set output 'ext-res-hedge.png'
set style data linespoints
plot 'ext-res-hedge.csv' using 2:xtic(1) with linespoints title 'availability', \
     'ext-res-hedge.csv' using 3:xtic(1) with linespoints title 'errors', \
     'ext-res-hedge.csv' using 4:xtic(1) with linespoints title 'throughput', \
     'ext-res-hedge.csv' using 5:xtic(1) with linespoints title 'p99_read_ms', \
     'ext-res-hedge.csv' using 6:xtic(1) with linespoints title 'retries', \
     'ext-res-hedge.csv' using 7:xtic(1) with linespoints title 'hedges', \
     'ext-res-hedge.csv' using 8:xtic(1) with linespoints title 'hedge_wins', \
     'ext-res-hedge.csv' using 9:xtic(1) with linespoints title 'breaker_transitions', \
     'ext-res-hedge.csv' using 10:xtic(1) with linespoints title 'shed'
