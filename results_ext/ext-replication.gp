set datafile separator ','
set key outside
set title "Extension: impact of replication (Cassandra, workload W, 4 nodes)"
set xlabel 'rf'
set ylabel 'ops/sec | ms | GB'
set logscale y
set term pngcairo size 900,540
set output 'ext-replication.png'
set style data linespoints
plot 'ext-replication.csv' using 2:xtic(1) with linespoints title 'throughput', \
     'ext-replication.csv' using 3:xtic(1) with linespoints title 'write_ms', \
     'ext-replication.csv' using 4:xtic(1) with linespoints title 'disk_gb_per_node_at_10m'
