set datafile separator ','
set key outside
set title "Extension: telemetry timeline at 70% load (Cassandra, workload R, 8 nodes; target 142928 ops/s)"
set xlabel 'window'
set ylabel 'ops/sec | ratio | ms'
set logscale y
set term pngcairo size 900,540
set output 'ext-obs-telemetry.png'
set style data linespoints
plot 'ext-obs-telemetry.csv' using 2:xtic(1) with linespoints title 'ops_per_sec', \
     'ext-obs-telemetry.csv' using 3:xtic(1) with linespoints title 'error_rate', \
     'ext-obs-telemetry.csv' using 4:xtic(1) with linespoints title 'p50_ms', \
     'ext-obs-telemetry.csv' using 5:xtic(1) with linespoints title 'p95_ms', \
     'ext-obs-telemetry.csv' using 6:xtic(1) with linespoints title 'p99_ms', \
     'ext-obs-telemetry.csv' using 7:xtic(1) with linespoints title 'cpu_util', \
     'ext-obs-telemetry.csv' using 8:xtic(1) with linespoints title 'disk_util', \
     'ext-obs-telemetry.csv' using 9:xtic(1) with linespoints title 'net_util'
