set datafile separator ','
set key outside
set title "Extension: single-node crash at t=3s, restart at t=6s (Cassandra, workload R, 4 nodes)"
set xlabel 'rf'
set ylabel 'ratio | count | ops/sec | s'
set term pngcairo size 900,540
set output 'ext-faults-crash.png'
set style data linespoints
plot 'ext-faults-crash.csv' using 2:xtic(1) with linespoints title 'availability', \
     'ext-faults-crash.csv' using 3:xtic(1) with linespoints title 'errors', \
     'ext-faults-crash.csv' using 4:xtic(1) with linespoints title 'throughput', \
     'ext-faults-crash.csv' using 5:xtic(1) with linespoints title 'pre_ops_per_sec', \
     'ext-faults-crash.csv' using 6:xtic(1) with linespoints title 'mid_ops_per_sec', \
     'ext-faults-crash.csv' using 7:xtic(1) with linespoints title 'post_ops_per_sec', \
     'ext-faults-crash.csv' using 8:xtic(1) with linespoints title 'recovery_ratio', \
     'ext-faults-crash.csv' using 9:xtic(1) with linespoints title 'recovery_secs'
