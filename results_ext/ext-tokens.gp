set datafile separator ','
set key outside
set title "Extension: Cassandra token assignment (workload R, 8 nodes)"
set xlabel 'tokens'
set ylabel 'ops/sec | ms'
set logscale y
set term pngcairo size 900,540
set output 'ext-tokens.png'
set style data linespoints
plot 'ext-tokens.csv' using 2:xtic(1) with linespoints title 'throughput', \
     'ext-tokens.csv' using 3:xtic(1) with linespoints title 'read_ms'
