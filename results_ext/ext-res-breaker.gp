set datafile separator ','
set key outside
set title "Extension: circuit breaker vs a partitioned shard, t=3s to t=6s (Redis, read-only, timeout 10ms, 4 nodes)"
set xlabel 'policy'
set ylabel 'ratio | count | ops/sec | ms'
set logscale y
set term pngcairo size 900,540
set output 'ext-res-breaker.png'
set style data linespoints
plot 'ext-res-breaker.csv' using 2:xtic(1) with linespoints title 'availability', \
     'ext-res-breaker.csv' using 3:xtic(1) with linespoints title 'errors', \
     'ext-res-breaker.csv' using 4:xtic(1) with linespoints title 'throughput', \
     'ext-res-breaker.csv' using 5:xtic(1) with linespoints title 'p99_read_ms', \
     'ext-res-breaker.csv' using 6:xtic(1) with linespoints title 'retries', \
     'ext-res-breaker.csv' using 7:xtic(1) with linespoints title 'hedges', \
     'ext-res-breaker.csv' using 8:xtic(1) with linespoints title 'hedge_wins', \
     'ext-res-breaker.csv' using 9:xtic(1) with linespoints title 'breaker_transitions', \
     'ext-res-breaker.csv' using 10:xtic(1) with linespoints title 'shed'
