set datafile separator ','
set key outside
set title "Extension: compaction strategy (Cassandra, 4 nodes)"
set xlabel 'strategy'
set ylabel 'ops/sec | ms'
set logscale y
set term pngcairo size 900,540
set output 'ext-compaction.png'
set style data linespoints
plot 'ext-compaction.csv' using 2:xtic(1) with linespoints title 'thr_R', \
     'ext-compaction.csv' using 3:xtic(1) with linespoints title 'thr_W', \
     'ext-compaction.csv' using 4:xtic(1) with linespoints title 'read_ms_R'
