set datafile separator ','
set key outside
set title "Extension: impact of compression (Cassandra, 4 nodes)"
set xlabel 'config'
set ylabel 'ops/sec | GB'
set term pngcairo size 900,540
set output 'ext-compression.png'
set style data linespoints
plot 'ext-compression.csv' using 2:xtic(1) with linespoints title 'thr_R', \
     'ext-compression.csv' using 3:xtic(1) with linespoints title 'thr_W', \
     'ext-compression.csv' using 4:xtic(1) with linespoints title 'disk_gb_per_node_at_10m'
