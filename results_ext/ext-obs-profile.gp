set datafile separator ','
set key outside
set title "Extension: virtual-time attribution per op (workload R, 4 nodes)"
set xlabel 'store'
set ylabel 'ms/op'
set logscale y
set term pngcairo size 900,540
set output 'ext-obs-profile.png'
set style data linespoints
plot 'ext-obs-profile.csv' using 2:xtic(1) with linespoints title 'cpu_queue_ms', \
     'ext-obs-profile.csv' using 3:xtic(1) with linespoints title 'cpu_service_ms', \
     'ext-obs-profile.csv' using 4:xtic(1) with linespoints title 'disk_queue_ms', \
     'ext-obs-profile.csv' using 5:xtic(1) with linespoints title 'disk_service_ms', \
     'ext-obs-profile.csv' using 6:xtic(1) with linespoints title 'net_queue_ms', \
     'ext-obs-profile.csv' using 7:xtic(1) with linespoints title 'net_service_ms'
