set datafile separator ','
set key outside
set title "Extension: live bootstrap 4→5 nodes at t=8s (Cassandra, workload R; streamed 7.2 MB)"
set xlabel 'second'
set ylabel 'ops completed'
set term pngcairo size 900,540
set output 'ext-elasticity.png'
set style data linespoints
plot 'ext-elasticity.csv' using 2:xtic(1) with linespoints title 'ops_per_sec'
