set datafile separator ','
set key outside
set title "Extension: snapshot/resume equivalence and divergence bisection (workload RW, 4 nodes)"
set xlabel 'store'
set ylabel 'count | 0/1 | index'
set term pngcairo size 900,540
set output 'ext-snap-resume.png'
set style data linespoints
plot 'ext-snap-resume.csv' using 2:xtic(1) with linespoints title 'checkpoints', \
     'ext-snap-resume.csv' using 3:xtic(1) with linespoints title 'resume_match', \
     'ext-snap-resume.csv' using 4:xtic(1) with linespoints title 'divergent_at'
