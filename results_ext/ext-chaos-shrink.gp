set datafile separator ','
set key outside
set title "Extension: durability-bug shrink, Cassandra rf=2 with hint replay disabled (workload RW, 4 nodes)"
set xlabel 'fixture'
set ylabel 'count | count | count | count | 0/1'
set term pngcairo size 900,540
set output 'ext-chaos-shrink.png'
set style data linespoints
plot 'ext-chaos-shrink.csv' using 2:xtic(1) with linespoints title 'violations', \
     'ext-chaos-shrink.csv' using 3:xtic(1) with linespoints title 'min_events', \
     'ext-chaos-shrink.csv' using 4:xtic(1) with linespoints title 'probes', \
     'ext-chaos-shrink.csv' using 5:xtic(1) with linespoints title 'resumed_probes', \
     'ext-chaos-shrink.csv' using 6:xtic(1) with linespoints title 'still_fails'
