set datafile separator ','
set key outside
set title "Extension: admission control vs a retry storm, crash t=3s restart t=6s (Cassandra rf=1, workload R, 4 nodes)"
set xlabel 'policy'
set ylabel 'ratio | count | ops/sec | ms'
set logscale y
set term pngcairo size 900,540
set output 'ext-res-storm.png'
set style data linespoints
plot 'ext-res-storm.csv' using 2:xtic(1) with linespoints title 'availability', \
     'ext-res-storm.csv' using 3:xtic(1) with linespoints title 'errors', \
     'ext-res-storm.csv' using 4:xtic(1) with linespoints title 'throughput', \
     'ext-res-storm.csv' using 5:xtic(1) with linespoints title 'p99_read_ms', \
     'ext-res-storm.csv' using 6:xtic(1) with linespoints title 'retries', \
     'ext-res-storm.csv' using 7:xtic(1) with linespoints title 'hedges', \
     'ext-res-storm.csv' using 8:xtic(1) with linespoints title 'hedge_wins', \
     'ext-res-storm.csv' using 9:xtic(1) with linespoints title 'breaker_transitions', \
     'ext-res-storm.csv' using 10:xtic(1) with linespoints title 'shed'
