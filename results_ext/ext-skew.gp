set datafile separator ','
set key outside
set title "Extension: key popularity skew (Cassandra, workload R, 8 nodes)"
set xlabel 'distribution'
set ylabel 'ops/sec | ms'
set logscale y
set term pngcairo size 900,540
set output 'ext-skew.png'
set style data linespoints
plot 'ext-skew.csv' using 2:xtic(1) with linespoints title 'throughput', \
     'ext-skew.csv' using 3:xtic(1) with linespoints title 'read_ms'
