set datafile separator ','
set key outside
set title "Extension: chaos search campaign, 3 seeded schedules per store (workload RW, 4 nodes)"
set xlabel 'store'
set ylabel 'count | count | 0/1'
set term pngcairo size 900,540
set output 'ext-chaos-campaign.png'
set style data linespoints
plot 'ext-chaos-campaign.csv' using 2:xtic(1) with linespoints title 'schedules', \
     'ext-chaos-campaign.csv' using 3:xtic(1) with linespoints title 'violations', \
     'ext-chaos-campaign.csv' using 4:xtic(1) with linespoints title 'deterministic'
